//! Command-line front end for the campaign engine and the `campaignd`
//! service.
//!
//! ```text
//! campaign run <suite>... [--budget N] [--workers N] [--cache-dir DIR]
//!                         [--no-cache] [--no-resume] [--retry-failed]
//!                         [--max-jobs N] [--report FILE] [--quiet]
//! campaign status <name> [--cache-dir DIR]
//! campaign stats         [--cache-dir DIR]
//! campaign submit <suite> --tenant NAME [--addr HOST:PORT] [--budget N]
//!                         [--repeat N] [--seed-bump N] [--prefetcher L]
//!                         [--emc on|off] [--name S] [--watch]
//! campaign watch <job-id> [--addr HOST:PORT]
//! campaign svc-status     [--addr HOST:PORT]
//! campaign drain          [--addr HOST:PORT]
//! ```
//!
//! Suites: `quad` (H1–H10 × 8 configs), `homog` (high-intensity × 8),
//! `mix8-1mc` / `mix8-2mc` (Figure 14 grids), or `all`. For `run` the
//! budget defaults to `EMC_FIGURE_BUDGET` (else 30000) — the *resolved*
//! value is what enters every job key, so cached results are immune to
//! later environment changes. For `submit` an omitted budget is sent as
//! 0 and the **daemon's** configured default applies, so every client
//! of one daemon resolves to the same cache keys.
//!
//! Exit codes are a contract (see [`exit_code`]): 0 complete, 1 runtime
//! failure, 2 usage, 3 partial campaign, 5 service unreachable.

use emc_campaign::{
    homog_jobs, mix8_jobs, quad_jobs, Campaign, CampaignOptions, Client, ClientError, JobStatus,
    Manifest, ResultCache, DEFAULT_CACHE_DIR,
};
use emc_types::{ServiceStats, SubmitRequest, SystemConfig};

/// Default daemon address — keep in sync with the `campaignd` binary.
const DEFAULT_ADDR: &str = "127.0.0.1:8321";

// ---------------------------------------------------------------------
// Exit-code contract
// ---------------------------------------------------------------------

/// How an invocation ended. Every command funnels into one of these;
/// `main` exits exactly once through [`exit_code`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// Everything asked for resolved.
    Complete,
    /// Runtime failure: missing manifest, unwritable report, daemon
    /// rejection, protocol mismatch.
    Failed,
    /// Bad command line.
    Usage,
    /// The campaign/job finished with unresolved or failed work —
    /// distinct from `Failed` so CI can treat "ran, but not everything
    /// landed" separately from "could not run".
    Partial,
    /// `campaignd` did not answer at the given address — distinct from
    /// `Failed` so scripts can fall back to local `run`.
    ServiceUnreachable,
}

/// The single process-exit mapping. Scripts and CI match on these
/// numbers, so changing one is a protocol break.
fn exit_code(outcome: Outcome) -> u8 {
    match outcome {
        Outcome::Complete => 0,
        Outcome::Failed => 1,
        Outcome::Usage => 2,
        Outcome::Partial => 3,
        Outcome::ServiceUnreachable => 5,
    }
}

/// Print a client error and fold it into the exit-code contract.
fn client_outcome(e: ClientError) -> Outcome {
    eprintln!("campaign: {e}");
    match e {
        ClientError::Unreachable(_) => Outcome::ServiceUnreachable,
        ClientError::Rejected { .. } | ClientError::Protocol(_) => Outcome::Failed,
    }
}

fn usage_text() -> String {
    "usage: campaign run <suite>... [--budget N] [--workers N] [--cache-dir DIR]\n\
     \x20                           [--no-cache] [--no-resume] [--retry-failed]\n\
     \x20                           [--max-jobs N] [--report FILE] [--quiet]\n\
     \x20      campaign status <name> [--cache-dir DIR]\n\
     \x20      campaign stats [--cache-dir DIR]\n\
     \x20      campaign submit <suite> --tenant NAME [--addr HOST:PORT]\n\
     \x20                              [--budget N] [--repeat N] [--seed-bump N]\n\
     \x20                              [--prefetcher L] [--emc on|off] [--name S] [--watch]\n\
     \x20      campaign watch <job-id> [--addr HOST:PORT]\n\
     \x20      campaign svc-status [--addr HOST:PORT]\n\
     \x20      campaign drain [--addr HOST:PORT]\n\
     suites: quad homog mix8-1mc mix8-2mc all"
        .to_string()
}

// ---------------------------------------------------------------------
// Argument parsing
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Args {
    positional: Vec<String>,
    budget: Option<u64>,
    workers: usize,
    cache_dir: String,
    no_cache: bool,
    no_resume: bool,
    retry_failed: bool,
    max_jobs: Option<usize>,
    report: Option<String>,
    quiet: bool,
    // Service-client flags.
    addr: String,
    tenant: String,
    name: Option<String>,
    seed_bump: u64,
    repeat: u64,
    prefetcher: Option<String>,
    emc: Option<bool>,
    watch: bool,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            positional: Vec::new(),
            budget: None,
            workers: 0,
            cache_dir: DEFAULT_CACHE_DIR.to_string(),
            no_cache: false,
            no_resume: false,
            retry_failed: false,
            max_jobs: None,
            report: None,
            quiet: false,
            addr: DEFAULT_ADDR.to_string(),
            tenant: String::new(),
            name: None,
            seed_bump: 0,
            repeat: 1,
            prefetcher: None,
            emc: None,
            watch: false,
        }
    }
}

fn want(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn want_u64(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<u64, String> {
    let v = want(it, flag)?;
    v.parse().map_err(|_| format!("{flag}: not a number: {v}"))
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--budget" => args.budget = Some(want_u64(&mut it, "--budget")?),
            "--workers" => args.workers = want_u64(&mut it, "--workers")? as usize,
            "--max-jobs" => args.max_jobs = Some(want_u64(&mut it, "--max-jobs")? as usize),
            "--cache-dir" => args.cache_dir = want(&mut it, "--cache-dir")?,
            "--report" => args.report = Some(want(&mut it, "--report")?),
            "--no-cache" => args.no_cache = true,
            "--no-resume" => args.no_resume = true,
            "--retry-failed" => args.retry_failed = true,
            "--quiet" => args.quiet = true,
            "--addr" => args.addr = want(&mut it, "--addr")?,
            "--tenant" => args.tenant = want(&mut it, "--tenant")?,
            "--name" => args.name = Some(want(&mut it, "--name")?),
            "--seed-bump" => args.seed_bump = want_u64(&mut it, "--seed-bump")?,
            "--repeat" => args.repeat = want_u64(&mut it, "--repeat")?.max(1),
            "--prefetcher" => args.prefetcher = Some(want(&mut it, "--prefetcher")?),
            "--emc" => {
                args.emc = Some(match want(&mut it, "--emc")?.as_str() {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    other => return Err(format!("--emc: expected on|off, got {other:?}")),
                })
            }
            "--watch" => args.watch = true,
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with("--") => return Err(format!("unknown flag: {flag}")),
            pos => args.positional.push(pos.to_string()),
        }
    }
    Ok(args)
}

/// Resolve the per-core retired-uop budget for *local* runs: flag, then
/// environment, then the figures default.
fn resolve_budget(flag: Option<u64>) -> u64 {
    flag.or_else(|| std::env::var("EMC_FIGURE_BUDGET").ok()?.trim().parse().ok())
        .unwrap_or(30_000)
}

/// Build the wire submission from parsed flags. Unlike `run`, the
/// budget is NOT environment-resolved here: an omitted `--budget` goes
/// out as 0 so the daemon's default applies uniformly to all clients.
fn submit_request_of(args: &Args) -> Result<SubmitRequest, String> {
    let suite = args
        .positional
        .first()
        .ok_or("submit: which suite?")?
        .clone();
    if args.tenant.is_empty() {
        return Err("submit: --tenant is required".into());
    }
    let mut req = SubmitRequest::new(args.tenant.clone(), suite);
    req.name = args.name.clone().unwrap_or_default();
    req.budget = args.budget.unwrap_or(0);
    req.seed_bump = args.seed_bump;
    req.repeat = args.repeat;
    req.prefetcher = args.prefetcher.clone();
    req.emc = args.emc;
    Ok(req)
}

// ---------------------------------------------------------------------
// Local commands (run / status / stats)
// ---------------------------------------------------------------------

fn suites_of(
    names: &[String],
    budget: u64,
) -> Result<Vec<(&'static str, Vec<emc_campaign::JobSpec>)>, String> {
    let mut suites = Vec::new();
    let mut add = |name: &str| -> Result<(), String> {
        match name {
            "quad" => suites.push(("quad", quad_jobs(budget))),
            "homog" => suites.push(("homog", homog_jobs(budget))),
            "mix8-1mc" => suites.push((
                "mix8-1mc",
                mix8_jobs(SystemConfig::eight_core_1mc(), budget),
            )),
            "mix8-2mc" => suites.push((
                "mix8-2mc",
                mix8_jobs(SystemConfig::eight_core_2mc(), budget),
            )),
            other => return Err(format!("unknown suite: {other}")),
        }
        Ok(())
    };
    for n in names {
        if n == "all" {
            for s in ["quad", "homog", "mix8-1mc", "mix8-2mc"] {
                add(s)?;
            }
        } else {
            add(n)?;
        }
    }
    Ok(suites)
}

fn cmd_run(args: Args) -> Outcome {
    if args.positional.is_empty() {
        eprintln!("run: no suites named");
        return Outcome::Usage;
    }
    let budget = resolve_budget(args.budget);
    let suites = match suites_of(&args.positional, budget) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return Outcome::Usage;
        }
    };
    let cache = (!args.no_cache).then(|| ResultCache::new(&args.cache_dir));
    let opts = CampaignOptions {
        cache,
        workers: args.workers,
        resume: !args.no_resume,
        retry_failed: args.retry_failed,
        max_fresh_runs: args.max_jobs,
        progress: !args.quiet,
        ..CampaignOptions::default()
    };

    if !args.quiet {
        eprintln!(
            "# budget: {budget} retired uops/core · cache: {}",
            args.cache_dir
        );
    }
    let mut reports = Vec::new();
    let mut incomplete = 0usize;
    for (name, jobs) in suites {
        let report = Campaign::new(name, jobs).run(&opts);
        println!(
            "{name}: {} jobs · {} hits ({:.0}%) · {} executed · {} deferred · {} unresolved · {:.1}s",
            report.records.len(),
            report.hits(),
            report.hit_rate() * 100.0,
            report.executed(),
            report.deferred(),
            report.unresolved() - report.deferred(),
            report.wall.as_secs_f64(),
        );
        incomplete += report.unresolved();
        reports.push(report);
    }

    if let Some(path) = &args.report {
        let doc = emc_types::JsonValue::Arr(reports.iter().map(|r| r.to_json()).collect());
        let mut text = doc.to_json();
        text.push('\n');
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write report {path}: {e}");
            return Outcome::Failed;
        }
        println!("report written to {path}");
    }
    // Deferred jobs are an intentional interrupt (--max-jobs), still a
    // partial campaign: exit non-zero so CI can't mistake it for done.
    if incomplete > 0 {
        return Outcome::Partial;
    }
    Outcome::Complete
}

fn cmd_status(args: Args) -> Outcome {
    let Some(name) = args.positional.first() else {
        eprintln!("status: which campaign?");
        return Outcome::Usage;
    };
    let root = std::path::Path::new(&args.cache_dir);
    let Some(m) = Manifest::load(root, name) else {
        println!("{name}: no manifest under {}", args.cache_dir);
        return Outcome::Failed;
    };
    let (mut done, mut failed, mut pending) = (0, 0, 0);
    for e in &m.entries {
        match e.status {
            JobStatus::Done => done += 1,
            JobStatus::Failed => failed += 1,
            JobStatus::Pending => pending += 1,
        }
    }
    println!(
        "{name}: {done} done · {failed} failed · {pending} pending (of {})",
        m.entries.len()
    );
    for e in m.entries.iter().filter(|e| e.status == JobStatus::Failed) {
        println!(
            "  FAILED {} ({} attempts): {}",
            e.label, e.attempts, e.outcome
        );
    }
    if pending > 0 {
        println!(
            "  resume with: campaign run {name} --cache-dir {}",
            args.cache_dir
        );
    }
    Outcome::Complete
}

/// "p50 120ms · p95 340ms · 0.61 Mcyc/s median" from the measured rows
/// of a manifest slice, or `None` if nothing was ever executed (e.g. a
/// manifest written before host-perf landed).
fn host_perf_line(entries: &[emc_campaign::ManifestEntry]) -> Option<String> {
    let mut wall_ms = emc_types::Histogram::new();
    let mut cps = emc_types::Histogram::new();
    for e in entries.iter().filter(|e| e.sim_cycles > 0) {
        wall_ms.record(e.wall_ms);
        cps.record(e.cycles_per_sec() as u64);
    }
    if wall_ms.count == 0 {
        return None;
    }
    Some(format!(
        "host p50 {}ms · p95 {}ms · {:.2} Mcyc/s median ({} measured)",
        wall_ms.p50(),
        wall_ms.p95(),
        cps.p50() as f64 / 1e6,
        wall_ms.count,
    ))
}

fn cmd_stats(args: Args) -> Outcome {
    let cache = ResultCache::new(&args.cache_dir);
    println!(
        "cache {}: {} result entries · fingerprint {}",
        args.cache_dir,
        cache.entry_count(),
        emc_campaign::code_fingerprint()
    );
    let mut all_entries = Vec::new();
    let manifests = std::path::Path::new(&args.cache_dir).join("manifests");
    if let Ok(rd) = std::fs::read_dir(&manifests) {
        let mut paths: Vec<_> = rd.flatten().map(|f| f.path()).collect();
        paths.sort();
        for path in paths {
            if path.extension().is_some_and(|x| x == "json") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    if let Some(m) = Manifest::load(std::path::Path::new(&args.cache_dir), stem) {
                        let perf = host_perf_line(&m.entries)
                            .map(|l| format!(" · {l}"))
                            .unwrap_or_default();
                        println!(
                            "  manifest {stem}: {}/{} done{perf}",
                            m.done_count(),
                            m.entries.len()
                        );
                        all_entries.extend(m.entries);
                    }
                }
            }
        }
    }
    if let Some(l) = host_perf_line(&all_entries) {
        println!("  all manifests: {l}");
    }
    Outcome::Complete
}

// ---------------------------------------------------------------------
// Service commands (submit / watch / svc-status / drain)
// ---------------------------------------------------------------------

/// Render a milliseconds span compactly ("850ms", "4.2s", "3m07s").
fn fmt_ms(ms: u64) -> String {
    if ms < 1_000 {
        format!("{ms}ms")
    } else if ms < 60_000 {
        format!("{:.1}s", ms as f64 / 1_000.0)
    } else {
        format!("{}m{:02}s", ms / 60_000, (ms % 60_000) / 1_000)
    }
}

fn cmd_submit(args: Args) -> Outcome {
    let req = match submit_request_of(&args) {
        Ok(r) => r,
        Err(m) => {
            eprintln!("{m}");
            return Outcome::Usage;
        }
    };
    let client = Client::new(args.addr.clone());
    match client.submit(&req) {
        Ok(ack) => {
            println!(
                "submitted {}: {} tasks queued (service depth {})",
                ack.id, ack.total, ack.queue_depth
            );
            if args.watch {
                watch_job(&client, &ack.id, args.quiet)
            } else {
                println!(
                    "follow with: campaign watch {} --addr {}",
                    ack.id, args.addr
                );
                Outcome::Complete
            }
        }
        Err(e) => client_outcome(e),
    }
}

fn cmd_watch(args: Args) -> Outcome {
    let Some(id) = args.positional.first() else {
        eprintln!("watch: which job id?");
        return Outcome::Usage;
    };
    watch_job(&Client::new(args.addr.clone()), id, args.quiet)
}

/// Long-poll a job's event stream to completion, then map the final
/// status onto the exit-code contract (failures → `Partial`).
fn watch_job(client: &Client, id: &str, quiet: bool) -> Outcome {
    let mut since = 0u64;
    loop {
        let batch = match client.events(id, since, 10_000) {
            Ok(b) => b,
            Err(e) => return client_outcome(e),
        };
        for ev in &batch.events {
            if !quiet {
                let eta = ev
                    .eta_ms
                    .map(|ms| format!(" · eta {}", fmt_ms(ms)))
                    .unwrap_or_default();
                println!(
                    "[{}/{}] {} — {} ({} hits, {} failed{eta})",
                    ev.done, ev.total, ev.label, ev.outcome, ev.hits, ev.failed
                );
            }
        }
        since = batch.next;
        if batch.complete {
            break;
        }
    }
    match client.status(id) {
        Ok(s) => {
            println!(
                "{id} done: {} tasks · {} hits · {} executed · {} failed · {}",
                s.total,
                s.hits,
                s.executed,
                s.failed,
                fmt_ms(s.wall_ms)
            );
            if s.failed == 0 {
                Outcome::Complete
            } else {
                Outcome::Partial
            }
        }
        Err(e) => client_outcome(e),
    }
}

/// Render `/v1/stats` for humans.
fn render_stats(addr: &str, s: &ServiceStats) {
    let drain = if s.draining { " · DRAINING" } else { "" };
    println!(
        "campaignd at {addr}: up {} · {} workers · queue {}/{}{drain}",
        fmt_ms(s.uptime_ms),
        s.workers,
        s.queue_depth,
        s.queue_cap
    );
    println!(
        "  jobs {} ({} done) · tasks {} · hits {} ({:.1}%) · executed {} · failed {}",
        s.jobs,
        s.jobs_done,
        s.tasks_done,
        s.hits,
        s.hit_rate * 100.0,
        s.executed,
        s.failed
    );
    println!(
        "  wait p50 {} p95 {} max {} · task p50 {} p95 {} · job p50 {} p95 {}",
        fmt_ms(s.wait_ms.p50),
        fmt_ms(s.wait_ms.p95),
        fmt_ms(s.wait_ms.max),
        fmt_ms(s.task_wall_ms.p50),
        fmt_ms(s.task_wall_ms.p95),
        fmt_ms(s.job_wall_ms.p50),
        fmt_ms(s.job_wall_ms.p95)
    );
    if s.mcycles_per_sec > 0.0 {
        println!(
            "  host {:.2} Mcyc/s over {} executed tasks",
            s.mcycles_per_sec, s.executed
        );
    }
    for t in &s.tenants {
        println!(
            "  tenant {}: {} queued · {} running · {} done · {} failed · wait p50 {} p95 {} max {} · {} escalated",
            t.tenant,
            t.queued,
            t.running,
            t.done,
            t.failed,
            fmt_ms(t.wait_ms.p50),
            fmt_ms(t.wait_ms.p95),
            fmt_ms(t.max_wait_ms),
            t.escalated
        );
    }
}

fn cmd_svc_status(args: Args) -> Outcome {
    match Client::new(args.addr.clone()).stats() {
        Ok(s) => {
            render_stats(&args.addr, &s);
            Outcome::Complete
        }
        Err(e) => client_outcome(e),
    }
}

fn cmd_drain(args: Args) -> Outcome {
    match Client::new(args.addr.clone()).drain() {
        Ok(_) => {
            println!("drain accepted; campaignd exits once the queue is idle");
            Outcome::Complete
        }
        Err(e) => client_outcome(e),
    }
}

// ---------------------------------------------------------------------
// Entry
// ---------------------------------------------------------------------

fn run(argv: &[String]) -> Outcome {
    let Some(cmd) = argv.first() else {
        eprintln!("{}", usage_text());
        return Outcome::Usage;
    };
    let args = match parse_args(&argv[1..]) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                eprintln!("{}", usage_text());
            } else {
                eprintln!("{msg}\n\n{}", usage_text());
            }
            return Outcome::Usage;
        }
    };
    match cmd.as_str() {
        "run" => cmd_run(args),
        "status" => cmd_status(args),
        "stats" => cmd_stats(args),
        "submit" => cmd_submit(args),
        "watch" => cmd_watch(args),
        "svc-status" => cmd_svc_status(args),
        "drain" => cmd_drain(args),
        other => {
            eprintln!("unknown command: {other}\n\n{}", usage_text());
            Outcome::Usage
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(exit_code(run(&argv)) as i32);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn exit_codes_are_a_stable_contract() {
        assert_eq!(exit_code(Outcome::Complete), 0);
        assert_eq!(exit_code(Outcome::Failed), 1);
        assert_eq!(exit_code(Outcome::Usage), 2);
        assert_eq!(exit_code(Outcome::Partial), 3);
        assert_eq!(exit_code(Outcome::ServiceUnreachable), 5);
    }

    #[test]
    fn client_errors_map_onto_the_contract() {
        assert_eq!(
            client_outcome(ClientError::Unreachable("nope".into())),
            Outcome::ServiceUnreachable
        );
        assert_eq!(
            client_outcome(ClientError::Protocol("weird".into())),
            Outcome::Failed
        );
        assert_eq!(
            client_outcome(ClientError::Rejected {
                status: 429,
                rejection: emc_types::Rejection::of("queue-full", "full"),
            }),
            Outcome::Failed
        );
    }

    #[test]
    fn parse_args_maps_service_flags() {
        let args = parse_args(&strs(&[
            "quad",
            "--tenant",
            "alice",
            "--addr",
            "127.0.0.1:9000",
            "--repeat",
            "12",
            "--seed-bump",
            "3",
            "--prefetcher",
            "GHB",
            "--emc",
            "on",
            "--name",
            "nightly",
            "--watch",
        ]))
        .unwrap();
        assert_eq!(args.positional, vec!["quad"]);
        assert_eq!(args.tenant, "alice");
        assert_eq!(args.addr, "127.0.0.1:9000");
        assert_eq!(args.repeat, 12);
        assert_eq!(args.seed_bump, 3);
        assert_eq!(args.prefetcher.as_deref(), Some("GHB"));
        assert_eq!(args.emc, Some(true));
        assert_eq!(args.name.as_deref(), Some("nightly"));
        assert!(args.watch);
    }

    #[test]
    fn parse_args_rejects_bad_input() {
        assert!(parse_args(&strs(&["--frobnicate"]))
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse_args(&strs(&["--tenant"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse_args(&strs(&["--repeat", "many"]))
            .unwrap_err()
            .contains("not a number"));
        assert!(parse_args(&strs(&["--emc", "maybe"]))
            .unwrap_err()
            .contains("on|off"));
        // --repeat 0 silently clamps to 1 (a zero-copy submission is
        // never what anyone means).
        assert_eq!(parse_args(&strs(&["--repeat", "0"])).unwrap().repeat, 1);
    }

    #[test]
    fn submit_request_passes_budget_through_unresolved() {
        let mut args = parse_args(&strs(&["quad", "--tenant", "alice"])).unwrap();
        let req = submit_request_of(&args).unwrap();
        assert_eq!(req.budget, 0, "omitted budget defers to the daemon");
        assert_eq!(req.tenant, "alice");
        assert_eq!(req.suite, "quad");
        assert_eq!(req.repeat, 1);

        args.budget = Some(500);
        assert_eq!(submit_request_of(&args).unwrap().budget, 500);
    }

    #[test]
    fn submit_requires_suite_and_tenant() {
        let no_suite = parse_args(&strs(&["--tenant", "alice"])).unwrap();
        assert!(submit_request_of(&no_suite).unwrap_err().contains("suite"));
        let no_tenant = parse_args(&strs(&["quad"])).unwrap();
        assert!(submit_request_of(&no_tenant)
            .unwrap_err()
            .contains("--tenant"));
    }

    #[test]
    fn fmt_ms_picks_sane_units() {
        assert_eq!(fmt_ms(850), "850ms");
        assert_eq!(fmt_ms(4_200), "4.2s");
        assert_eq!(fmt_ms(187_000), "3m07s");
    }

    #[test]
    fn unknown_suites_are_usage_errors_not_panics() {
        assert!(suites_of(&strs(&["frob"]), 100).is_err());
        let suites = suites_of(&strs(&["quad", "homog"]), 100).unwrap();
        assert_eq!(suites.len(), 2);
        assert_eq!(suites[0].0, "quad");
    }
}
