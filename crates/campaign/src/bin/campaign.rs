//! Command-line front end for the campaign engine.
//!
//! ```text
//! campaign run <suite>... [--budget N] [--workers N] [--cache-dir DIR]
//!                         [--no-cache] [--no-resume] [--retry-failed]
//!                         [--max-jobs N] [--report FILE] [--quiet]
//! campaign status <name> [--cache-dir DIR]
//! campaign stats         [--cache-dir DIR]
//! ```
//!
//! Suites: `quad` (H1–H10 × 8 configs), `homog` (high-intensity × 8),
//! `mix8-1mc` / `mix8-2mc` (Figure 14 grids), or `all`. The budget
//! defaults to `EMC_FIGURE_BUDGET` (else 30000) — the *resolved* value
//! is what enters every job key, so cached results are immune to later
//! environment changes.

use emc_campaign::{
    homog_jobs, mix8_jobs, quad_jobs, Campaign, CampaignOptions, JobStatus, Manifest, ResultCache,
    DEFAULT_CACHE_DIR,
};
use emc_types::SystemConfig;

fn usage() -> ! {
    eprintln!(
        "usage: campaign run <suite>... [--budget N] [--workers N] [--cache-dir DIR]\n\
         \x20                           [--no-cache] [--no-resume] [--retry-failed]\n\
         \x20                           [--max-jobs N] [--report FILE] [--quiet]\n\
         \x20      campaign status <name> [--cache-dir DIR]\n\
         \x20      campaign stats [--cache-dir DIR]\n\
         suites: quad homog mix8-1mc mix8-2mc all"
    );
    std::process::exit(2);
}

struct Args {
    positional: Vec<String>,
    budget: Option<u64>,
    workers: usize,
    cache_dir: String,
    no_cache: bool,
    no_resume: bool,
    retry_failed: bool,
    max_jobs: Option<usize>,
    report: Option<String>,
    quiet: bool,
}

fn parse_args(argv: &[String]) -> Args {
    let mut args = Args {
        positional: Vec::new(),
        budget: None,
        workers: 0,
        cache_dir: DEFAULT_CACHE_DIR.to_string(),
        no_cache: false,
        no_resume: false,
        retry_failed: false,
        max_jobs: None,
        report: None,
        quiet: false,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--budget" => {
                let v = value("--budget");
                args.budget = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--budget: not a number: {v}");
                    usage()
                }));
            }
            "--workers" => {
                let v = value("--workers");
                args.workers = v.parse().unwrap_or_else(|_| {
                    eprintln!("--workers: not a number: {v}");
                    usage()
                });
            }
            "--max-jobs" => {
                let v = value("--max-jobs");
                args.max_jobs = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--max-jobs: not a number: {v}");
                    usage()
                }));
            }
            "--cache-dir" => args.cache_dir = value("--cache-dir"),
            "--report" => args.report = Some(value("--report")),
            "--no-cache" => args.no_cache = true,
            "--no-resume" => args.no_resume = true,
            "--retry-failed" => args.retry_failed = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag: {flag}");
                usage();
            }
            pos => args.positional.push(pos.to_string()),
        }
    }
    args
}

/// Resolve the per-core retired-uop budget: flag, then environment,
/// then the figures default.
fn resolve_budget(flag: Option<u64>) -> u64 {
    flag.or_else(|| std::env::var("EMC_FIGURE_BUDGET").ok()?.trim().parse().ok())
        .unwrap_or(30_000)
}

fn suites_of(names: &[String], budget: u64) -> Vec<(&'static str, Vec<emc_campaign::JobSpec>)> {
    let mut suites = Vec::new();
    let mut add = |name: &str| match name {
        "quad" => suites.push(("quad", quad_jobs(budget))),
        "homog" => suites.push(("homog", homog_jobs(budget))),
        "mix8-1mc" => suites.push((
            "mix8-1mc",
            mix8_jobs(SystemConfig::eight_core_1mc(), budget),
        )),
        "mix8-2mc" => suites.push((
            "mix8-2mc",
            mix8_jobs(SystemConfig::eight_core_2mc(), budget),
        )),
        other => {
            eprintln!("unknown suite: {other}");
            usage();
        }
    };
    for n in names {
        if n == "all" {
            for s in ["quad", "homog", "mix8-1mc", "mix8-2mc"] {
                add(s);
            }
        } else {
            add(n);
        }
    }
    suites
}

fn cmd_run(args: Args) {
    if args.positional.is_empty() {
        eprintln!("run: no suites named");
        usage();
    }
    let budget = resolve_budget(args.budget);
    let cache = (!args.no_cache).then(|| ResultCache::new(&args.cache_dir));
    let opts = CampaignOptions {
        cache,
        workers: args.workers,
        resume: !args.no_resume,
        retry_failed: args.retry_failed,
        max_fresh_runs: args.max_jobs,
        progress: !args.quiet,
        ..CampaignOptions::default()
    };

    if !args.quiet {
        eprintln!(
            "# budget: {budget} retired uops/core · cache: {}",
            args.cache_dir
        );
    }
    let mut reports = Vec::new();
    let mut incomplete = 0usize;
    for (name, jobs) in suites_of(&args.positional, budget) {
        let report = Campaign::new(name, jobs).run(&opts);
        println!(
            "{name}: {} jobs · {} hits ({:.0}%) · {} executed · {} deferred · {} unresolved · {:.1}s",
            report.records.len(),
            report.hits(),
            report.hit_rate() * 100.0,
            report.executed(),
            report.deferred(),
            report.unresolved() - report.deferred(),
            report.wall.as_secs_f64(),
        );
        incomplete += report.unresolved();
        reports.push(report);
    }

    if let Some(path) = &args.report {
        let doc = emc_types::JsonValue::Arr(reports.iter().map(|r| r.to_json()).collect());
        let mut text = doc.to_json();
        text.push('\n');
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write report {path}: {e}");
            std::process::exit(1);
        }
        println!("report written to {path}");
    }
    // Deferred jobs are an intentional interrupt (--max-jobs), still a
    // partial campaign: exit non-zero so CI can't mistake it for done.
    if incomplete > 0 {
        std::process::exit(3);
    }
}

fn cmd_status(args: Args) {
    let Some(name) = args.positional.first() else {
        eprintln!("status: which campaign?");
        usage();
    };
    let root = std::path::Path::new(&args.cache_dir);
    let Some(m) = Manifest::load(root, name) else {
        println!("{name}: no manifest under {}", args.cache_dir);
        std::process::exit(1);
    };
    let (mut done, mut failed, mut pending) = (0, 0, 0);
    for e in &m.entries {
        match e.status {
            JobStatus::Done => done += 1,
            JobStatus::Failed => failed += 1,
            JobStatus::Pending => pending += 1,
        }
    }
    println!(
        "{name}: {done} done · {failed} failed · {pending} pending (of {})",
        m.entries.len()
    );
    for e in m.entries.iter().filter(|e| e.status == JobStatus::Failed) {
        println!(
            "  FAILED {} ({} attempts): {}",
            e.label, e.attempts, e.outcome
        );
    }
    if pending > 0 {
        println!(
            "  resume with: campaign run {name} --cache-dir {}",
            args.cache_dir
        );
    }
}

/// "p50 120ms · p95 340ms · 0.61 Mcyc/s median" from the measured rows
/// of a manifest slice, or `None` if nothing was ever executed (e.g. a
/// manifest written before host-perf landed).
fn host_perf_line(entries: &[emc_campaign::ManifestEntry]) -> Option<String> {
    let mut wall_ms = emc_types::Histogram::new();
    let mut cps = emc_types::Histogram::new();
    for e in entries.iter().filter(|e| e.sim_cycles > 0) {
        wall_ms.record(e.wall_ms);
        cps.record(e.cycles_per_sec() as u64);
    }
    if wall_ms.count == 0 {
        return None;
    }
    Some(format!(
        "host p50 {}ms · p95 {}ms · {:.2} Mcyc/s median ({} measured)",
        wall_ms.p50(),
        wall_ms.p95(),
        cps.p50() as f64 / 1e6,
        wall_ms.count,
    ))
}

fn cmd_stats(args: Args) {
    let cache = ResultCache::new(&args.cache_dir);
    println!(
        "cache {}: {} result entries · fingerprint {}",
        args.cache_dir,
        cache.entry_count(),
        emc_campaign::code_fingerprint()
    );
    let mut all_entries = Vec::new();
    let manifests = std::path::Path::new(&args.cache_dir).join("manifests");
    if let Ok(rd) = std::fs::read_dir(&manifests) {
        let mut paths: Vec<_> = rd.flatten().map(|f| f.path()).collect();
        paths.sort();
        for path in paths {
            if path.extension().is_some_and(|x| x == "json") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    if let Some(m) = Manifest::load(std::path::Path::new(&args.cache_dir), stem) {
                        let perf = host_perf_line(&m.entries)
                            .map(|l| format!(" · {l}"))
                            .unwrap_or_default();
                        println!(
                            "  manifest {stem}: {}/{} done{perf}",
                            m.done_count(),
                            m.entries.len()
                        );
                        all_entries.extend(m.entries);
                    }
                }
            }
        }
    }
    if let Some(l) = host_perf_line(&all_entries) {
        println!("  all manifests: {l}");
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        usage();
    };
    let args = parse_args(&argv[1..]);
    match cmd.as_str() {
        "run" => cmd_run(args),
        "status" => cmd_status(args),
        "stats" => cmd_stats(args),
        _ => usage(),
    }
}
