//! Lossless JSON codec for cached results.
//!
//! The cache's whole contract is that a hit is indistinguishable from a
//! fresh run — down to the bytes of every figure sidecar derived from
//! it. That requires an exact round-trip of [`RunResult`] (statistics,
//! histograms, energy breakdown) through the on-disk format, with no
//! external JSON crate on the runtime path (matching the metrics
//! exporters in `emc-sim`). Floats use Rust's shortest round-trip
//! formatting (exact by construction); `u64` counters above 2^53 are
//! carried as strings (see [`crate::spec::u`]).
//!
//! Every encoder destructures its struct without `..`, so adding a
//! statistics field without extending the codec is a compile error, not
//! a silently lossy cache.

use emc_energy::EnergyBreakdown;
use emc_types::{
    CoreStats, EmcStats, Histogram, JsonValue, MemStats, PrefetchStats, RingStats, Stats,
};

use crate::spec::{u, RunResult};

// ---------------------------------------------------------------------
// Decode helpers
// ---------------------------------------------------------------------

fn get<'a>(obj: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    obj.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

fn dec_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    match v {
        JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
            Ok(*n as u64)
        }
        JsonValue::Str(s) => s
            .parse()
            .map_err(|_| format!("{key}: bad u64 string {s:?}")),
        other => Err(format!("{key}: expected u64, got {other:?}")),
    }
}

fn get_u64(obj: &JsonValue, key: &str) -> Result<u64, String> {
    dec_u64(get(obj, key)?, key)
}

fn get_f64(obj: &JsonValue, key: &str) -> Result<f64, String> {
    get(obj, key)?
        .as_f64()
        .ok_or_else(|| format!("{key}: expected number"))
}

fn get_bool(obj: &JsonValue, key: &str) -> Result<bool, String> {
    match get(obj, key)? {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(format!("{key}: expected bool")),
    }
}

fn get_str<'a>(obj: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    get(obj, key)?
        .as_str()
        .ok_or_else(|| format!("{key}: expected string"))
}

fn get_u64_vec(obj: &JsonValue, key: &str) -> Result<Vec<u64>, String> {
    get(obj, key)?
        .as_arr()
        .ok_or_else(|| format!("{key}: expected array"))?
        .iter()
        .map(|v| dec_u64(v, key))
        .collect()
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

/// Encode a [`Histogram`] (count/sum/min/max plus the sparse-or-empty
/// bucket vector).
pub fn histogram_to_json(h: &Histogram) -> JsonValue {
    let Histogram {
        count,
        sum,
        min,
        max,
        buckets,
    } = h;
    JsonValue::obj(vec![
        ("count", u(*count)),
        ("sum", u(*sum)),
        ("min", u(*min)),
        ("max", u(*max)),
        (
            "buckets",
            JsonValue::Arr(buckets.iter().map(|&n| u(n)).collect()),
        ),
    ])
}

/// Decode a [`Histogram`].
pub fn histogram_from_json(v: &JsonValue) -> Result<Histogram, String> {
    Ok(Histogram {
        count: get_u64(v, "count")?,
        sum: get_u64(v, "sum")?,
        min: get_u64(v, "min")?,
        max: get_u64(v, "max")?,
        buckets: get_u64_vec(v, "buckets")?,
    })
}

fn get_hist(obj: &JsonValue, key: &str) -> Result<Histogram, String> {
    histogram_from_json(get(obj, key)?).map_err(|e| format!("{key}.{e}"))
}

// ---------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------

fn core_stats_to_json(c: &CoreStats) -> JsonValue {
    let CoreStats {
        cycles,
        retired_uops,
        retired_loads,
        retired_stores,
        retired_branches,
        branch_mispredicts,
        l1d_accesses,
        l1d_misses,
        llc_accesses,
        llc_misses,
        dependent_llc_misses,
        dependent_misses_prefetched,
        dep_chain_uop_sum,
        dep_chain_pairs,
        full_window_stall_cycles,
        chains_sent,
        chain_uops_sent,
        chain_live_ins,
        chain_live_outs,
        chains_aborted_branch,
        chains_aborted_tlb,
        chains_cancelled_disambiguation,
        chains_aborted_injected,
        emc_quiesce_events,
        prefetch_covered_misses,
        runahead_entries,
        runahead_uops,
        runahead_requests,
        chain_length_hist,
        stall_episodes,
    } = c;
    JsonValue::obj(vec![
        ("cycles", u(*cycles)),
        ("retired_uops", u(*retired_uops)),
        ("retired_loads", u(*retired_loads)),
        ("retired_stores", u(*retired_stores)),
        ("retired_branches", u(*retired_branches)),
        ("branch_mispredicts", u(*branch_mispredicts)),
        ("l1d_accesses", u(*l1d_accesses)),
        ("l1d_misses", u(*l1d_misses)),
        ("llc_accesses", u(*llc_accesses)),
        ("llc_misses", u(*llc_misses)),
        ("dependent_llc_misses", u(*dependent_llc_misses)),
        (
            "dependent_misses_prefetched",
            u(*dependent_misses_prefetched),
        ),
        ("dep_chain_uop_sum", u(*dep_chain_uop_sum)),
        ("dep_chain_pairs", u(*dep_chain_pairs)),
        ("full_window_stall_cycles", u(*full_window_stall_cycles)),
        ("chains_sent", u(*chains_sent)),
        ("chain_uops_sent", u(*chain_uops_sent)),
        ("chain_live_ins", u(*chain_live_ins)),
        ("chain_live_outs", u(*chain_live_outs)),
        ("chains_aborted_branch", u(*chains_aborted_branch)),
        ("chains_aborted_tlb", u(*chains_aborted_tlb)),
        (
            "chains_cancelled_disambiguation",
            u(*chains_cancelled_disambiguation),
        ),
        ("chains_aborted_injected", u(*chains_aborted_injected)),
        ("emc_quiesce_events", u(*emc_quiesce_events)),
        ("prefetch_covered_misses", u(*prefetch_covered_misses)),
        ("runahead_entries", u(*runahead_entries)),
        ("runahead_uops", u(*runahead_uops)),
        ("runahead_requests", u(*runahead_requests)),
        (
            "chain_length_hist",
            JsonValue::Arr(chain_length_hist.iter().map(|&n| u(n)).collect()),
        ),
        ("stall_episodes", histogram_to_json(stall_episodes)),
    ])
}

fn core_stats_from_json(v: &JsonValue) -> Result<CoreStats, String> {
    Ok(CoreStats {
        cycles: get_u64(v, "cycles")?,
        retired_uops: get_u64(v, "retired_uops")?,
        retired_loads: get_u64(v, "retired_loads")?,
        retired_stores: get_u64(v, "retired_stores")?,
        retired_branches: get_u64(v, "retired_branches")?,
        branch_mispredicts: get_u64(v, "branch_mispredicts")?,
        l1d_accesses: get_u64(v, "l1d_accesses")?,
        l1d_misses: get_u64(v, "l1d_misses")?,
        llc_accesses: get_u64(v, "llc_accesses")?,
        llc_misses: get_u64(v, "llc_misses")?,
        dependent_llc_misses: get_u64(v, "dependent_llc_misses")?,
        dependent_misses_prefetched: get_u64(v, "dependent_misses_prefetched")?,
        dep_chain_uop_sum: get_u64(v, "dep_chain_uop_sum")?,
        dep_chain_pairs: get_u64(v, "dep_chain_pairs")?,
        full_window_stall_cycles: get_u64(v, "full_window_stall_cycles")?,
        chains_sent: get_u64(v, "chains_sent")?,
        chain_uops_sent: get_u64(v, "chain_uops_sent")?,
        chain_live_ins: get_u64(v, "chain_live_ins")?,
        chain_live_outs: get_u64(v, "chain_live_outs")?,
        chains_aborted_branch: get_u64(v, "chains_aborted_branch")?,
        chains_aborted_tlb: get_u64(v, "chains_aborted_tlb")?,
        chains_cancelled_disambiguation: get_u64(v, "chains_cancelled_disambiguation")?,
        chains_aborted_injected: get_u64(v, "chains_aborted_injected")?,
        emc_quiesce_events: get_u64(v, "emc_quiesce_events")?,
        prefetch_covered_misses: get_u64(v, "prefetch_covered_misses")?,
        runahead_entries: get_u64(v, "runahead_entries")?,
        runahead_uops: get_u64(v, "runahead_uops")?,
        runahead_requests: get_u64(v, "runahead_requests")?,
        chain_length_hist: get_u64_vec(v, "chain_length_hist")?,
        stall_episodes: get_hist(v, "stall_episodes")?,
    })
}

fn mem_stats_to_json(m: &MemStats) -> JsonValue {
    let MemStats {
        dram_reads,
        dram_writes,
        dram_prefetches,
        row_hits,
        row_conflicts,
        row_empties,
        activates,
        precharges,
        core_miss_latency,
        emc_miss_latency,
        core_ring_component,
        core_cache_component,
        core_queue_component,
        emc_ring_component,
        emc_cache_component,
        emc_queue_component,
        dram_service_latency,
        on_chip_delay,
        ecc_reissues,
        backpressure_storms,
    } = m;
    JsonValue::obj(vec![
        ("dram_reads", u(*dram_reads)),
        ("dram_writes", u(*dram_writes)),
        ("dram_prefetches", u(*dram_prefetches)),
        ("row_hits", u(*row_hits)),
        ("row_conflicts", u(*row_conflicts)),
        ("row_empties", u(*row_empties)),
        ("activates", u(*activates)),
        ("precharges", u(*precharges)),
        ("core_miss_latency", histogram_to_json(core_miss_latency)),
        ("emc_miss_latency", histogram_to_json(emc_miss_latency)),
        (
            "core_ring_component",
            histogram_to_json(core_ring_component),
        ),
        (
            "core_cache_component",
            histogram_to_json(core_cache_component),
        ),
        (
            "core_queue_component",
            histogram_to_json(core_queue_component),
        ),
        ("emc_ring_component", histogram_to_json(emc_ring_component)),
        (
            "emc_cache_component",
            histogram_to_json(emc_cache_component),
        ),
        (
            "emc_queue_component",
            histogram_to_json(emc_queue_component),
        ),
        (
            "dram_service_latency",
            histogram_to_json(dram_service_latency),
        ),
        ("on_chip_delay", histogram_to_json(on_chip_delay)),
        ("ecc_reissues", u(*ecc_reissues)),
        ("backpressure_storms", u(*backpressure_storms)),
    ])
}

fn mem_stats_from_json(v: &JsonValue) -> Result<MemStats, String> {
    Ok(MemStats {
        dram_reads: get_u64(v, "dram_reads")?,
        dram_writes: get_u64(v, "dram_writes")?,
        dram_prefetches: get_u64(v, "dram_prefetches")?,
        row_hits: get_u64(v, "row_hits")?,
        row_conflicts: get_u64(v, "row_conflicts")?,
        row_empties: get_u64(v, "row_empties")?,
        activates: get_u64(v, "activates")?,
        precharges: get_u64(v, "precharges")?,
        core_miss_latency: get_hist(v, "core_miss_latency")?,
        emc_miss_latency: get_hist(v, "emc_miss_latency")?,
        core_ring_component: get_hist(v, "core_ring_component")?,
        core_cache_component: get_hist(v, "core_cache_component")?,
        core_queue_component: get_hist(v, "core_queue_component")?,
        emc_ring_component: get_hist(v, "emc_ring_component")?,
        emc_cache_component: get_hist(v, "emc_cache_component")?,
        emc_queue_component: get_hist(v, "emc_queue_component")?,
        dram_service_latency: get_hist(v, "dram_service_latency")?,
        on_chip_delay: get_hist(v, "on_chip_delay")?,
        ecc_reissues: get_u64(v, "ecc_reissues")?,
        backpressure_storms: get_u64(v, "backpressure_storms")?,
    })
}

fn ring_stats_to_json(r: &RingStats) -> JsonValue {
    let RingStats {
        control_msgs,
        data_msgs,
        emc_control_msgs,
        emc_data_msgs,
        total_hops,
        injected_delays,
    } = r;
    JsonValue::obj(vec![
        ("control_msgs", u(*control_msgs)),
        ("data_msgs", u(*data_msgs)),
        ("emc_control_msgs", u(*emc_control_msgs)),
        ("emc_data_msgs", u(*emc_data_msgs)),
        ("total_hops", u(*total_hops)),
        ("injected_delays", u(*injected_delays)),
    ])
}

fn ring_stats_from_json(v: &JsonValue) -> Result<RingStats, String> {
    Ok(RingStats {
        control_msgs: get_u64(v, "control_msgs")?,
        data_msgs: get_u64(v, "data_msgs")?,
        emc_control_msgs: get_u64(v, "emc_control_msgs")?,
        emc_data_msgs: get_u64(v, "emc_data_msgs")?,
        total_hops: get_u64(v, "total_hops")?,
        injected_delays: get_u64(v, "injected_delays")?,
    })
}

fn emc_stats_to_json(e: &EmcStats) -> JsonValue {
    let EmcStats {
        chains_executed,
        uops_executed,
        loads_executed,
        stores_executed,
        dcache_accesses,
        dcache_hits,
        direct_to_dram,
        llc_lookups,
        llc_misses_generated,
        tlb_hits,
        tlb_misses,
        chains_rejected_busy,
        branch_mispredicts_detected,
        requests_covered_by_prefetch,
        chain_latency,
    } = e;
    JsonValue::obj(vec![
        ("chains_executed", u(*chains_executed)),
        ("uops_executed", u(*uops_executed)),
        ("loads_executed", u(*loads_executed)),
        ("stores_executed", u(*stores_executed)),
        ("dcache_accesses", u(*dcache_accesses)),
        ("dcache_hits", u(*dcache_hits)),
        ("direct_to_dram", u(*direct_to_dram)),
        ("llc_lookups", u(*llc_lookups)),
        ("llc_misses_generated", u(*llc_misses_generated)),
        ("tlb_hits", u(*tlb_hits)),
        ("tlb_misses", u(*tlb_misses)),
        ("chains_rejected_busy", u(*chains_rejected_busy)),
        (
            "branch_mispredicts_detected",
            u(*branch_mispredicts_detected),
        ),
        (
            "requests_covered_by_prefetch",
            u(*requests_covered_by_prefetch),
        ),
        ("chain_latency", histogram_to_json(chain_latency)),
    ])
}

fn emc_stats_from_json(v: &JsonValue) -> Result<EmcStats, String> {
    Ok(EmcStats {
        chains_executed: get_u64(v, "chains_executed")?,
        uops_executed: get_u64(v, "uops_executed")?,
        loads_executed: get_u64(v, "loads_executed")?,
        stores_executed: get_u64(v, "stores_executed")?,
        dcache_accesses: get_u64(v, "dcache_accesses")?,
        dcache_hits: get_u64(v, "dcache_hits")?,
        direct_to_dram: get_u64(v, "direct_to_dram")?,
        llc_lookups: get_u64(v, "llc_lookups")?,
        llc_misses_generated: get_u64(v, "llc_misses_generated")?,
        tlb_hits: get_u64(v, "tlb_hits")?,
        tlb_misses: get_u64(v, "tlb_misses")?,
        chains_rejected_busy: get_u64(v, "chains_rejected_busy")?,
        branch_mispredicts_detected: get_u64(v, "branch_mispredicts_detected")?,
        requests_covered_by_prefetch: get_u64(v, "requests_covered_by_prefetch")?,
        chain_latency: get_hist(v, "chain_latency")?,
    })
}

fn prefetch_stats_to_json(p: &PrefetchStats) -> JsonValue {
    let PrefetchStats {
        issued,
        useful,
        useless,
        degree,
    } = p;
    JsonValue::obj(vec![
        ("issued", u(*issued)),
        ("useful", u(*useful)),
        ("useless", u(*useless)),
        ("degree", u(*degree)),
    ])
}

fn prefetch_stats_from_json(v: &JsonValue) -> Result<PrefetchStats, String> {
    Ok(PrefetchStats {
        issued: get_u64(v, "issued")?,
        useful: get_u64(v, "useful")?,
        useless: get_u64(v, "useless")?,
        degree: get_u64(v, "degree")?,
    })
}

/// Encode full run statistics.
pub fn stats_to_json(s: &Stats) -> JsonValue {
    let Stats {
        cycles,
        cores,
        mem,
        ring,
        emc,
        prefetch,
    } = s;
    JsonValue::obj(vec![
        ("cycles", u(*cycles)),
        (
            "cores",
            JsonValue::Arr(cores.iter().map(core_stats_to_json).collect()),
        ),
        ("mem", mem_stats_to_json(mem)),
        ("ring", ring_stats_to_json(ring)),
        ("emc", emc_stats_to_json(emc)),
        ("prefetch", prefetch_stats_to_json(prefetch)),
    ])
}

/// Decode full run statistics.
pub fn stats_from_json(v: &JsonValue) -> Result<Stats, String> {
    let cores = get(v, "cores")?
        .as_arr()
        .ok_or("cores: expected array")?
        .iter()
        .enumerate()
        .map(|(i, c)| core_stats_from_json(c).map_err(|e| format!("cores[{i}].{e}")))
        .collect::<Result<_, _>>()?;
    Ok(Stats {
        cycles: get_u64(v, "cycles")?,
        cores,
        mem: mem_stats_from_json(get(v, "mem")?).map_err(|e| format!("mem.{e}"))?,
        ring: ring_stats_from_json(get(v, "ring")?).map_err(|e| format!("ring.{e}"))?,
        emc: emc_stats_from_json(get(v, "emc")?).map_err(|e| format!("emc.{e}"))?,
        prefetch: prefetch_stats_from_json(get(v, "prefetch")?)
            .map_err(|e| format!("prefetch.{e}"))?,
    })
}

// ---------------------------------------------------------------------
// Energy and the full result
// ---------------------------------------------------------------------

fn energy_to_json(e: &EnergyBreakdown) -> JsonValue {
    let EnergyBreakdown {
        core_dynamic_j,
        cache_dynamic_j,
        ring_dynamic_j,
        dram_dynamic_j,
        emc_dynamic_j,
        chip_static_j,
        dram_static_j,
    } = e;
    JsonValue::obj(vec![
        ("core_dynamic_j", JsonValue::Num(*core_dynamic_j)),
        ("cache_dynamic_j", JsonValue::Num(*cache_dynamic_j)),
        ("ring_dynamic_j", JsonValue::Num(*ring_dynamic_j)),
        ("dram_dynamic_j", JsonValue::Num(*dram_dynamic_j)),
        ("emc_dynamic_j", JsonValue::Num(*emc_dynamic_j)),
        ("chip_static_j", JsonValue::Num(*chip_static_j)),
        ("dram_static_j", JsonValue::Num(*dram_static_j)),
    ])
}

fn energy_from_json(v: &JsonValue) -> Result<EnergyBreakdown, String> {
    Ok(EnergyBreakdown {
        core_dynamic_j: get_f64(v, "core_dynamic_j")?,
        cache_dynamic_j: get_f64(v, "cache_dynamic_j")?,
        ring_dynamic_j: get_f64(v, "ring_dynamic_j")?,
        dram_dynamic_j: get_f64(v, "dram_dynamic_j")?,
        emc_dynamic_j: get_f64(v, "emc_dynamic_j")?,
        chip_static_j: get_f64(v, "chip_static_j")?,
        dram_static_j: get_f64(v, "dram_static_j")?,
    })
}

/// Encode a full [`RunResult`].
pub fn run_result_to_json(r: &RunResult) -> JsonValue {
    let RunResult {
        workload,
        prefetcher,
        emc,
        stats,
        energy,
        ipcs,
    } = r;
    JsonValue::obj(vec![
        ("workload", workload.as_str().into()),
        ("prefetcher", prefetcher.as_str().into()),
        ("emc", JsonValue::Bool(*emc)),
        ("stats", stats_to_json(stats)),
        ("energy", energy_to_json(energy)),
        (
            "ipcs",
            JsonValue::Arr(ipcs.iter().map(|&v| JsonValue::Num(v)).collect()),
        ),
    ])
}

/// Decode a full [`RunResult`].
pub fn run_result_from_json(v: &JsonValue) -> Result<RunResult, String> {
    let ipcs = get(v, "ipcs")?
        .as_arr()
        .ok_or("ipcs: expected array")?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| "ipcs: expected number".to_string())
        })
        .collect::<Result<_, _>>()?;
    Ok(RunResult {
        workload: get_str(v, "workload")?.to_string(),
        prefetcher: get_str(v, "prefetcher")?.to_string(),
        emc: get_bool(v, "emc")?,
        stats: stats_from_json(get(v, "stats")?).map_err(|e| format!("stats.{e}"))?,
        energy: energy_from_json(get(v, "energy")?).map_err(|e| format!("energy.{e}"))?,
        ipcs,
    })
}

impl emc_types::ToJson for RunResult {
    fn to_json_value(&self) -> JsonValue {
        run_result_to_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emc_types::SystemConfig;

    fn busy_stats() -> Stats {
        let mut s = Stats::new(2);
        s.cycles = 1_234_567;
        s.cores[0].retired_uops = 30_000;
        s.cores[0].llc_misses = 777;
        s.cores[0].record_chain_length(5);
        s.cores[0].stall_episodes.record(1024);
        s.cores[1].cycles = 999;
        s.mem.dram_reads = 4242;
        s.mem.core_miss_latency.record(300);
        s.mem.core_miss_latency.record(9000);
        s.mem.emc_miss_latency.record(250);
        s.emc.chains_executed = 17;
        s.emc.chain_latency.record(512);
        s.prefetch.issued = 5;
        s
    }

    fn result() -> RunResult {
        let spec = crate::JobSpec::homog(
            emc_workloads::Benchmark::Mcf,
            SystemConfig::quad_core(),
            1000,
        );
        let mut r = spec.to_result(busy_stats());
        r.ipcs = vec![0.75, 0.5];
        r
    }

    fn assert_result_eq(a: &RunResult, b: &RunResult) {
        // RunResult has no PartialEq (Stats doesn't derive it); byte
        // equality of the canonical encoding is the stronger check
        // anyway — it is exactly what the cache relies on.
        assert_eq!(
            run_result_to_json(a).to_json(),
            run_result_to_json(b).to_json()
        );
    }

    #[test]
    fn run_result_round_trips_exactly() {
        let r = result();
        let text = run_result_to_json(&r).to_json();
        let back = run_result_from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_result_eq(&r, &back);
        assert_eq!(back.stats.cycles, 1_234_567);
        assert_eq!(back.stats.mem.core_miss_latency.count, 2);
        assert_eq!(back.stats.mem.core_miss_latency.p99(), 9000);
        assert_eq!(back.stats.cores[0].chain_length_hist[5], 1);
        assert_eq!(back.ipcs, vec![0.75, 0.5]);
    }

    #[test]
    fn saturated_u64_round_trips_via_string() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1);
        let text = histogram_to_json(&h).to_json();
        assert!(text.contains(&format!("\"{}\"", u64::MAX)), "{text}");
        let back = histogram_from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn empty_histogram_round_trips_with_empty_buckets() {
        let h = Histogram::new();
        let back =
            histogram_from_json(&JsonValue::parse(&histogram_to_json(&h).to_json()).unwrap())
                .unwrap();
        assert_eq!(back, h);
        assert!(back.buckets.is_empty());
    }

    #[test]
    fn decode_errors_name_the_path() {
        let mut doc = run_result_to_json(&result());
        if let JsonValue::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "energy");
        }
        let err = run_result_from_json(&doc).unwrap_err();
        assert!(err.contains("energy"), "{err}");

        let bad = JsonValue::parse(r#"{"count":1,"sum":-3,"min":0,"max":0,"buckets":[]}"#).unwrap();
        let err = histogram_from_json(&bad).unwrap_err();
        assert!(err.contains("sum"), "{err}");
    }
}
