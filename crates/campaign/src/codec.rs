//! Lossless JSON codec for cached results.
//!
//! The cache's whole contract is that a hit is indistinguishable from a
//! fresh run — down to the bytes of every figure sidecar derived from
//! it. That requires an exact round-trip of [`RunResult`] (statistics,
//! histograms, energy breakdown) through the on-disk format, with no
//! external JSON crate on the runtime path (matching the metrics
//! exporters in `emc-sim`).
//!
//! The statistics and histogram codecs live in [`emc_types::codec`]
//! (the canonical encoding shared with config hashing and the exporter
//! tests) and are re-exported here unchanged; this module adds only
//! the campaign-specific layers — the energy breakdown and the full
//! [`RunResult`] envelope. Every encoder destructures its struct
//! without `..`, so adding a field without extending the codec is a
//! compile error, not a silently lossy cache.

use emc_energy::EnergyBreakdown;
use emc_types::codec::{get, get_bool, get_f64, get_str};
use emc_types::JsonValue;

pub use emc_types::codec::{
    histogram_from_json, histogram_to_json, stats_from_json, stats_to_json,
};

use crate::spec::RunResult;

// ---------------------------------------------------------------------
// Energy and the full result
// ---------------------------------------------------------------------

fn energy_to_json(e: &EnergyBreakdown) -> JsonValue {
    let EnergyBreakdown {
        core_dynamic_j,
        cache_dynamic_j,
        ring_dynamic_j,
        dram_dynamic_j,
        emc_dynamic_j,
        chip_static_j,
        dram_static_j,
    } = e;
    JsonValue::obj(vec![
        ("core_dynamic_j", JsonValue::Num(*core_dynamic_j)),
        ("cache_dynamic_j", JsonValue::Num(*cache_dynamic_j)),
        ("ring_dynamic_j", JsonValue::Num(*ring_dynamic_j)),
        ("dram_dynamic_j", JsonValue::Num(*dram_dynamic_j)),
        ("emc_dynamic_j", JsonValue::Num(*emc_dynamic_j)),
        ("chip_static_j", JsonValue::Num(*chip_static_j)),
        ("dram_static_j", JsonValue::Num(*dram_static_j)),
    ])
}

fn energy_from_json(v: &JsonValue) -> Result<EnergyBreakdown, String> {
    Ok(EnergyBreakdown {
        core_dynamic_j: get_f64(v, "core_dynamic_j")?,
        cache_dynamic_j: get_f64(v, "cache_dynamic_j")?,
        ring_dynamic_j: get_f64(v, "ring_dynamic_j")?,
        dram_dynamic_j: get_f64(v, "dram_dynamic_j")?,
        emc_dynamic_j: get_f64(v, "emc_dynamic_j")?,
        chip_static_j: get_f64(v, "chip_static_j")?,
        dram_static_j: get_f64(v, "dram_static_j")?,
    })
}

/// Encode a full [`RunResult`].
pub fn run_result_to_json(r: &RunResult) -> JsonValue {
    let RunResult {
        workload,
        prefetcher,
        emc,
        stats,
        energy,
        ipcs,
    } = r;
    JsonValue::obj(vec![
        ("workload", workload.as_str().into()),
        ("prefetcher", prefetcher.as_str().into()),
        ("emc", JsonValue::Bool(*emc)),
        ("stats", stats_to_json(stats)),
        ("energy", energy_to_json(energy)),
        (
            "ipcs",
            JsonValue::Arr(ipcs.iter().map(|&v| JsonValue::Num(v)).collect()),
        ),
    ])
}

/// Decode a full [`RunResult`].
pub fn run_result_from_json(v: &JsonValue) -> Result<RunResult, String> {
    let ipcs = get(v, "ipcs")?
        .as_arr()
        .ok_or("ipcs: expected array")?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| "ipcs: expected number".to_string())
        })
        .collect::<Result<_, _>>()?;
    Ok(RunResult {
        workload: get_str(v, "workload")?.to_string(),
        prefetcher: get_str(v, "prefetcher")?.to_string(),
        emc: get_bool(v, "emc")?,
        stats: stats_from_json(get(v, "stats")?).map_err(|e| format!("stats.{e}"))?,
        energy: energy_from_json(get(v, "energy")?).map_err(|e| format!("energy.{e}"))?,
        ipcs,
    })
}

impl emc_types::ToJson for RunResult {
    fn to_json_value(&self) -> JsonValue {
        run_result_to_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emc_types::{Histogram, Stats, SystemConfig};

    fn busy_stats() -> Stats {
        let mut s = Stats::new(2);
        s.cycles = 1_234_567;
        s.cores[0].retired_uops = 30_000;
        s.cores[0].llc_misses = 777;
        s.cores[0].record_chain_length(5);
        s.cores[0].stall_episodes.record(1024);
        s.cores[0].chains_aborted_lease = 2;
        s.cores[1].cycles = 999;
        s.mem.dram_reads = 4242;
        s.mem.core_miss_latency.record(300);
        s.mem.core_miss_latency.record(9000);
        s.mem.emc_miss_latency.record(250);
        s.mem.escalated_requests = 11;
        s.emc.chains_executed = 17;
        s.emc.chain_latency.record(512);
        s.prefetch.issued = 5;
        s
    }

    fn result() -> RunResult {
        let spec = crate::JobSpec::homog(
            emc_workloads::Benchmark::Mcf,
            SystemConfig::quad_core(),
            1000,
        );
        let mut r = spec.to_result(busy_stats());
        r.ipcs = vec![0.75, 0.5];
        r
    }

    fn assert_result_eq(a: &RunResult, b: &RunResult) {
        // RunResult has no PartialEq (Stats doesn't derive it); byte
        // equality of the canonical encoding is the stronger check
        // anyway — it is exactly what the cache relies on.
        assert_eq!(
            run_result_to_json(a).to_json(),
            run_result_to_json(b).to_json()
        );
    }

    #[test]
    fn run_result_round_trips_exactly() {
        let r = result();
        let text = run_result_to_json(&r).to_json();
        let back = run_result_from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_result_eq(&r, &back);
        assert_eq!(back.stats.cycles, 1_234_567);
        assert_eq!(back.stats.mem.core_miss_latency.count, 2);
        assert_eq!(back.stats.mem.core_miss_latency.p99(), 9000);
        assert_eq!(back.stats.mem.escalated_requests, 11);
        assert_eq!(back.stats.cores[0].chain_length_hist[5], 1);
        assert_eq!(back.stats.cores[0].chains_aborted_lease, 2);
        assert_eq!(back.ipcs, vec![0.75, 0.5]);
    }

    #[test]
    fn saturated_u64_round_trips_via_string() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1);
        let text = histogram_to_json(&h).to_json();
        assert!(text.contains(&format!("\"{}\"", u64::MAX)), "{text}");
        let back = histogram_from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn empty_histogram_round_trips_with_empty_buckets() {
        let h = Histogram::new();
        let back =
            histogram_from_json(&JsonValue::parse(&histogram_to_json(&h).to_json()).unwrap())
                .unwrap();
        assert_eq!(back, h);
        assert!(back.buckets.is_empty());
    }

    #[test]
    fn decode_errors_name_the_path() {
        let mut doc = run_result_to_json(&result());
        if let JsonValue::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "energy");
        }
        let err = run_result_from_json(&doc).unwrap_err();
        assert!(err.contains("energy"), "{err}");

        let bad = JsonValue::parse(r#"{"count":1,"sum":-3,"min":0,"max":0,"buckets":[]}"#).unwrap();
        let err = histogram_from_json(&bad).unwrap_err();
        assert!(err.contains("sum"), "{err}");
    }
}
