//! Work-stealing parallel map on `std::thread::scope`.
//!
//! Generalizes the bench harness's former `par_map`: a shared index
//! counter acts as the work queue, each worker claims the next
//! unclaimed job when it finishes its current one (so a slow job never
//! blocks the queue behind it), and results land in their input slot so
//! output order always matches input order. Unlike the old
//! implementation this one is not capped at four workers — campaign
//! grids are embarrassingly parallel and should use the whole machine.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers to use when the caller passes `workers == 0`:
/// every core the OS will give us, minimum one.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Apply `f` to every job across `workers` threads (0 = all cores),
/// returning results in input order. Panics in `f` propagate after all
/// workers stop claiming new jobs.
pub fn parallel_map<J, R, F>(jobs: Vec<J>, workers: usize, f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    let workers = if workers == 0 {
        default_workers()
    } else {
        workers
    };
    let workers = workers.min(jobs.len()).max(1);
    if workers <= 1 {
        return jobs.iter().enumerate().map(|(i, j)| f(i, j)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let r = f(i, &jobs[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_input_order_regardless_of_finish_order() {
        let jobs: Vec<u64> = (0..64).collect();
        let out = parallel_map(jobs, 8, |i, &j| {
            // Early jobs sleep longer, so they finish last.
            std::thread::sleep(std::time::Duration::from_micros(200 - 3 * i as u64));
            j * 2
        });
        assert_eq!(out, (0..64).map(|j| j * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = parallel_map((0..257).collect(), 16, |i, &j: &usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, j);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert_eq!(out.iter().copied().collect::<HashSet<_>>().len(), 257);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(
            parallel_map(Vec::<u8>::new(), 4, |_, &j| j),
            Vec::<u8>::new()
        );
        assert_eq!(parallel_map(vec![7], 0, |_, &j| j + 1), vec![8]);
        // More workers than jobs is fine.
        assert_eq!(parallel_map(vec![1, 2], 64, |_, &j| j), vec![1, 2]);
    }

    #[test]
    fn serial_fallback_used_for_single_worker() {
        // With workers=1 the map must not spawn; observable via order of
        // side effects matching input order exactly.
        let seen = Mutex::new(Vec::new());
        parallel_map((0..10).collect(), 1, |i, _: &usize| {
            seen.lock().unwrap().push(i);
        });
        assert_eq!(*seen.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }
}
