//! 128-bit content hashing for job keys.
//!
//! Two independent 64-bit FNV-1a streams (distinct offset bases and odd
//! multipliers) run over the same bytes, each finalized with a
//! splitmix64 avalanche. This is not a cryptographic hash — campaign
//! keys only need to separate *accidentally* similar job specs, and the
//! canonical spec encoding already makes every field byte-visible — but
//! 128 bits keep the birthday bound far beyond any realistic campaign
//! size (billions of jobs).

/// Hash `bytes` to a 32-character lowercase hex digest.
pub fn digest128_hex(bytes: &[u8]) -> String {
    let (a, b) = digest128(bytes);
    format!("{a:016x}{b:016x}")
}

/// Hash `bytes` to two independent 64-bit words.
pub fn digest128(bytes: &[u8]) -> (u64, u64) {
    let mut a: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
    let mut b: u64 = 0x9ae1_6a3b_2f90_404f;
    for &byte in bytes {
        a = (a ^ byte as u64).wrapping_mul(0x0000_0100_0000_01b3);
        b = (b ^ byte as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    }
    (mix(a), mix(b))
}

/// splitmix64 finalizer: avalanches the weak low-order diffusion of a
/// plain multiplicative hash.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_hex() {
        let d = digest128_hex(b"emc");
        assert_eq!(d.len(), 32);
        assert!(d.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(d, digest128_hex(b"emc"), "deterministic");
    }

    #[test]
    fn single_byte_flips_change_the_digest() {
        let base = digest128_hex(b"campaign-spec");
        for i in 0..b"campaign-spec".len() {
            let mut m = b"campaign-spec".to_vec();
            m[i] ^= 1;
            assert_ne!(digest128_hex(&m), base, "flip at byte {i}");
        }
    }

    #[test]
    fn empty_and_prefix_inputs_differ() {
        let d0 = digest128_hex(b"");
        let d1 = digest128_hex(b"a");
        let d2 = digest128_hex(b"ab");
        assert_ne!(d0, d1);
        assert_ne!(d1, d2);
    }
}
