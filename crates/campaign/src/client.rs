//! HTTP/JSON client for the `campaignd` service (`emc-campaignd-v1`).
//!
//! Lives in this crate — not `emc-campaignd` — because the `campaign`
//! CLI is the primary consumer and the dependency arrow points the
//! other way (the daemon builds *on* the engine). Plain
//! `std::net::TcpStream`, one request per connection, matching the
//! daemon's `Connection: close` discipline; the wire documents are the
//! shared types in [`emc_types::svc`].

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use emc_types::{
    EventBatch, JobStatusView, JsonValue, Rejection, ServiceStats, SubmitAck, SubmitRequest,
};

/// How a client call failed — the split the CLI's exit-code mapping
/// needs: a daemon that isn't there is a different failure class from a
/// daemon that said no.
#[derive(Debug)]
pub enum ClientError {
    /// Could not reach the daemon at all (connect/write/read failure).
    Unreachable(String),
    /// The daemon answered with a structured rejection.
    Rejected {
        /// HTTP status (400, 404, 429, 503).
        status: u16,
        /// The decoded rejection document.
        rejection: Rejection,
    },
    /// The daemon answered, but not in the protocol we speak.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Unreachable(e) => write!(f, "service unreachable: {e}"),
            ClientError::Rejected { status, rejection } => write!(
                f,
                "rejected ({status} {}): {}",
                rejection.error, rejection.detail
            ),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

/// A client bound to one daemon address (`host:port`).
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    /// Baseline I/O timeout; long-polls extend it by their own timeout.
    timeout: Duration,
}

impl Client {
    /// A client for the daemon at `addr`.
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            timeout: Duration::from_secs(30),
        }
    }

    /// The daemon address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Liveness probe (`GET /v1/healthz`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Unreachable`] when nothing answers.
    pub fn healthz(&self) -> Result<(), ClientError> {
        self.request("GET", "/v1/healthz", None, self.timeout)
            .map(|_| ())
    }

    /// Submit a job (`POST /v1/jobs`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] carries the structured 400/429/503.
    pub fn submit(&self, req: &SubmitRequest) -> Result<SubmitAck, ClientError> {
        let doc = self.request("POST", "/v1/jobs", Some(&req.to_json()), self.timeout)?;
        SubmitAck::from_json(&doc).map_err(ClientError::Protocol)
    }

    /// Snapshot a job (`GET /v1/jobs/<id>`).
    ///
    /// # Errors
    ///
    /// 404 surfaces as [`ClientError::Rejected`].
    pub fn status(&self, id: &str) -> Result<JobStatusView, ClientError> {
        let doc = self.request("GET", &format!("/v1/jobs/{id}"), None, self.timeout)?;
        JobStatusView::from_json(&doc).map_err(ClientError::Protocol)
    }

    /// Long-poll a job's event stream
    /// (`GET /v1/jobs/<id>/events?since=N&timeout_ms=M`).
    ///
    /// # Errors
    ///
    /// 404 surfaces as [`ClientError::Rejected`].
    pub fn events(&self, id: &str, since: u64, timeout_ms: u64) -> Result<EventBatch, ClientError> {
        let path = format!("/v1/jobs/{id}/events?since={since}&timeout_ms={timeout_ms}");
        let doc = self.request(
            "GET",
            &path,
            None,
            self.timeout + Duration::from_millis(timeout_ms),
        )?;
        EventBatch::from_json(&doc).map_err(ClientError::Protocol)
    }

    /// Service statistics (`GET /v1/stats`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Unreachable`] / [`ClientError::Protocol`].
    pub fn stats(&self) -> Result<ServiceStats, ClientError> {
        let doc = self.request("GET", "/v1/stats", None, self.timeout)?;
        ServiceStats::from_json(&doc).map_err(ClientError::Protocol)
    }

    /// Begin a graceful drain (`POST /v1/drain`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Unreachable`] when nothing answers.
    pub fn drain(&self) -> Result<JsonValue, ClientError> {
        self.request("POST", "/v1/drain", None, self.timeout)
    }

    /// One request/response cycle. 2xx returns the parsed body; other
    /// statuses decode the body as a [`Rejection`].
    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&JsonValue>,
        read_timeout: Duration,
    ) -> Result<JsonValue, ClientError> {
        let addr = self
            .addr
            .to_socket_addrs()
            .map_err(|e| ClientError::Unreachable(format!("{}: {e}", self.addr)))?
            .next()
            .ok_or_else(|| ClientError::Unreachable(format!("{}: no address", self.addr)))?;
        let mut stream = TcpStream::connect_timeout(&addr, self.timeout)
            .map_err(|e| ClientError::Unreachable(format!("{}: {e}", self.addr)))?;
        stream
            .set_read_timeout(Some(read_timeout))
            .map_err(|e| ClientError::Unreachable(e.to_string()))?;
        let _ = stream.set_nodelay(true);

        let payload = body.map(|b| b.to_json()).unwrap_or_default();
        let request = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{payload}",
            self.addr,
            payload.len(),
        );
        stream
            .write_all(request.as_bytes())
            .map_err(|e| ClientError::Unreachable(format!("write: {e}")))?;

        let (status, text) = read_response(&mut stream)?;
        let doc = JsonValue::parse(&text)
            .map_err(|e| ClientError::Protocol(format!("status {status}, bad body: {e}")))?;
        if (200..300).contains(&status) {
            return Ok(doc);
        }
        match Rejection::from_json(&doc) {
            Ok(rejection) => Err(ClientError::Rejected { status, rejection }),
            Err(e) => Err(ClientError::Protocol(format!(
                "status {status}, undecodable rejection: {e}"
            ))),
        }
    }
}

/// Parse one HTTP/1.1 response: status code and body (honoring
/// `Content-Length` when present, else read-to-close).
fn read_response(stream: &mut TcpStream) -> Result<(u16, String), ClientError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| ClientError::Unreachable(format!("read status line: {e}")))?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line {line:?}")))?;

    let mut content_length: Option<usize> = None;
    loop {
        let mut h = String::new();
        reader
            .read_line(&mut h)
            .map_err(|e| ClientError::Unreachable(format!("read header: {e}")))?;
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }

    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader
                .read_exact(&mut buf)
                .map_err(|e| ClientError::Unreachable(format!("read body: {e}")))?;
            String::from_utf8_lossy(&buf).into_owned()
        }
        None => {
            let mut buf = String::new();
            reader
                .read_to_string(&mut buf)
                .map_err(|e| ClientError::Unreachable(format!("read body: {e}")))?;
            buf
        }
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Serve exactly one canned HTTP response, then close.
    fn one_shot_server(status_line: &str, body: &str) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let response = format!(
            "HTTP/1.1 {status_line}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        );
        std::thread::spawn(move || {
            if let Ok((mut stream, _)) = listener.accept() {
                // Drain the request before answering so the client's
                // write never races the close.
                let mut buf = [0u8; 4096];
                let _ = stream.read(&mut buf);
                let _ = stream.write_all(response.as_bytes());
            }
        });
        addr
    }

    #[test]
    fn decodes_a_successful_ack() {
        let ack = SubmitAck {
            id: "j9".into(),
            total: 80,
            queue_depth: 80,
        };
        let addr = one_shot_server("200 OK", &ack.to_json().to_json());
        let got = Client::new(addr)
            .submit(&SubmitRequest::new("t", "quad"))
            .unwrap();
        assert_eq!(got, ack);
    }

    #[test]
    fn surfaces_structured_rejections_with_status() {
        let rej = Rejection {
            error: "queue-full".into(),
            detail: "at capacity".into(),
            queue_depth: 10,
            capacity: 10,
        };
        let addr = one_shot_server("429 Too Many Requests", &rej.to_json().to_json());
        match Client::new(addr).submit(&SubmitRequest::new("t", "quad")) {
            Err(ClientError::Rejected { status, rejection }) => {
                assert_eq!(status, 429);
                assert_eq!(rejection, rej);
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn dead_daemon_is_unreachable_not_a_panic() {
        // Bind then drop: the port is (momentarily) closed.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        match Client::new(addr).healthz() {
            Err(ClientError::Unreachable(_)) => {}
            other => panic!("expected Unreachable, got {other:?}"),
        }
    }

    #[test]
    fn garbage_responses_are_protocol_errors() {
        let addr = one_shot_server("200 OK", "this is not json");
        match Client::new(addr).stats() {
            Err(ClientError::Protocol(_)) => {}
            other => panic!("expected Protocol, got {other:?}"),
        }
    }
}
