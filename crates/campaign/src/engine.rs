//! The campaign engine: schedule jobs, consult the cache, retry faults,
//! record progress.
//!
//! A [`Campaign`] is a named, ordered list of [`JobSpec`]s. Running it
//! walks every job through one policy: known-failed jobs are skipped
//! (unless retries are requested), cached results are hits, everything
//! else executes on the work-stealing pool under the class-driven
//! retry policy ([`retry_decision`]). A wedge whose [`WedgeClass`] is
//! transient (starvation, backpressure, slow-but-live) gets bounded
//! re-runs; a deterministic class (EMC context leak, core deadlock)
//! fails immediately — the simulator is deterministic, so re-running it
//! only burns time. A [`RunOutcome::CapHit`] whose liveness probes show
//! the run still making progress is re-run exactly once under a 10×
//! extended cycle cap; a cap hit with a deterministic root cause fails
//! immediately. Every completed job is stored in the cache and
//! journaled in the manifest before the campaign moves on, so an
//! interrupt loses at most the jobs still in flight.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use emc_types::{Histogram, JsonValue, RunOutcome, WedgeClass};

use crate::cache::ResultCache;
use crate::exec::parallel_map;
use crate::manifest::{JobStatus, Manifest};
use crate::spec::{JobKey, JobSpec, RunResult};

/// Schema tag stamped into campaign report JSON.
pub const REPORT_SCHEMA: &str = "emc-campaign-report-v1";

/// Cycle-cap multiplier for the one extended re-run a slow-but-live cap
/// hit earns.
pub const CAP_EXTENSION_FACTOR: u64 = 10;

/// What the engine does after a non-`Completed` attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryDecision {
    /// Run the job again as-is: the wedge's root cause is transient (or
    /// predates classification) and the retry budget has room.
    Retry,
    /// Run once more under an extended cycle cap: the run hit the cap
    /// while its liveness probes showed forward progress.
    ExtendCap,
    /// Record the failure: deterministic root cause, retry budget
    /// spent, or the extended cap was already granted.
    Fail,
}

/// The pure class-driven retry policy, separated from the execution
/// loop so every (outcome, class) cell is unit-testable.
///
/// - [`RunOutcome::Wedged`] with a transient class — MC starvation,
///   ring backpressure, slow-but-live — retries while `attempts <=
///   wedge_retries`; an unclassified wedge (reports from before the
///   classifier existed) is treated as transient. A deterministic class
///   (EMC context leak, core deadlock) fails on the first attempt: the
///   simulator is deterministic, so the re-run would wedge identically.
/// - [`RunOutcome::CapHit`] whose class says the run was still live
///   earns exactly one re-run under an extended cap; a cap hit that is
///   itself deadlocked (or already extended) fails immediately.
/// - [`RunOutcome::Completed`] never reaches this policy.
pub fn retry_decision(
    outcome: RunOutcome,
    class: Option<&WedgeClass>,
    attempts: u32,
    wedge_retries: u32,
    cap_extended: bool,
) -> RetryDecision {
    match outcome {
        RunOutcome::Completed => RetryDecision::Fail,
        RunOutcome::Wedged => {
            let transient = class.is_none_or(WedgeClass::is_transient);
            if transient && attempts <= wedge_retries {
                RetryDecision::Retry
            } else {
                RetryDecision::Fail
            }
        }
        RunOutcome::CapHit => {
            let live = class.is_some_and(WedgeClass::is_transient);
            if live && !cap_extended {
                RetryDecision::ExtendCap
            } else {
                RetryDecision::Fail
            }
        }
    }
}

/// The reentrant core of the engine: consult the cache, execute with
/// the class-driven retry policy, store the result. Detached from
/// campaign bookkeeping (manifests, deferral, progress) so a
/// long-running service can share one `Executor` across a resident
/// worker pool — every method takes `&self`, and the type is
/// `Send + Sync`, so concurrent [`resolve`](Executor::resolve) calls
/// from many threads are safe. Two executors (even in different
/// processes) racing on the same spec converge on one cache entry via
/// the cache's atomic temp+rename writes.
#[derive(Debug, Clone)]
pub struct Executor {
    /// Result cache to consult and fill; `None` executes every job.
    pub cache: Option<ResultCache>,
    /// Bounded re-runs for transient wedge classes.
    pub wedge_retries: u32,
    /// Prefix for diagnostic stderr lines ("campaign NAME", "worker 3").
    pub tag: String,
}

impl Executor {
    /// An executor over `cache` with the default retry budget.
    pub fn new(cache: Option<ResultCache>) -> Self {
        Executor {
            cache,
            wedge_retries: 2,
            tag: "engine".into(),
        }
    }

    /// Rename the diagnostic tag.
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = tag.into();
        self
    }

    /// Resolve one spec: cache hit, or execute under the class-driven
    /// retry policy and store the result. Sets the record's `wall` to
    /// the time spent in this call (microseconds for hits, the full
    /// simulation for executions).
    pub fn resolve(&self, spec: &JobSpec) -> JobRecord {
        let start = Instant::now();
        let mut record = JobRecord {
            label: spec.label.clone(),
            key: spec.key(),
            source: JobSource::Executed,
            outcome: String::new(),
            attempts: 0,
            result: None,
            wall: Duration::ZERO,
        };

        if let Some(cache) = &self.cache {
            if let Some(result) = cache.load(spec) {
                record.source = JobSource::CacheHit;
                record.outcome = "cache-hit".into();
                record.result = Some(result);
                record.wall = start.elapsed();
                return record;
            }
        }

        // Execute under the class-driven retry policy: transient wedge
        // classes get bounded re-runs, deterministic classes fail on
        // sight, and a slow-but-live cap hit earns one extended cap.
        let mut next_cap: Option<u64> = None;
        loop {
            record.attempts += 1;
            let report = match next_cap {
                Some(cap) => spec.execute_capped(cap),
                None => spec.execute(),
            };
            if report.outcome == RunOutcome::Completed {
                let result = spec.to_result(report.stats);
                if let Some(cache) = &self.cache {
                    if let Err(e) = cache.store(spec, &result) {
                        eprintln!("# {}: {e}", self.tag);
                    }
                }
                record.outcome = if record.attempts > 1 {
                    format!("completed (attempt {})", record.attempts)
                } else {
                    "completed".into()
                };
                record.result = Some(result);
                record.wall = start.elapsed();
                return record;
            }

            let class_label = report
                .class
                .as_ref()
                .map(|c| c.to_string())
                .unwrap_or_else(|| "unclassified".into());
            match retry_decision(
                report.outcome,
                report.class.as_ref(),
                record.attempts,
                self.wedge_retries,
                next_cap.is_some(),
            ) {
                RetryDecision::Retry => {
                    eprintln!(
                        "# {}: {} wedged ({class_label}, attempt {}), retrying",
                        self.tag, spec.label, record.attempts
                    );
                }
                RetryDecision::ExtendCap => {
                    let cap = spec
                        .default_cycle_cap()
                        .saturating_mul(CAP_EXTENSION_FACTOR);
                    eprintln!(
                        "# {}: {} hit the cycle cap while live ({class_label}), \
                         re-running once at {CAP_EXTENSION_FACTOR}x cap",
                        self.tag, spec.label
                    );
                    next_cap = Some(cap);
                }
                RetryDecision::Fail => {
                    record.outcome = match report.outcome {
                        RunOutcome::Wedged => {
                            let diag = report
                                .wedge
                                .as_ref()
                                .map(|w| format!(" at cycle {}", w.cycle))
                                .unwrap_or_default();
                            format!(
                                "wedged{diag} after {} attempts — root cause: {class_label}",
                                record.attempts
                            )
                        }
                        _ => format!(
                            "cycle-cap hit after {} cycles — root cause: {class_label}{}",
                            report.stats.cycles,
                            if next_cap.is_some() {
                                " (extended cap exhausted)"
                            } else {
                                " (not retried: deterministic)"
                            }
                        ),
                    };
                    record.wall = start.elapsed();
                    return record;
                }
            }
        }
    }
}

/// Policy knobs for one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Result cache to consult and fill; `None` disables caching (every
    /// job executes).
    pub cache: Option<ResultCache>,
    /// Worker threads (0 = one per available core).
    pub workers: usize,
    /// Load the prior manifest and skip already-`done` bookkeeping. When
    /// false a fresh manifest overwrites any prior one (the result cache
    /// still deduplicates actual simulation work).
    pub resume: bool,
    /// Re-execute jobs the manifest recorded as failed.
    pub retry_failed: bool,
    /// How many times to re-run a job that wedges before recording it
    /// failed. Cap hits never retry (deterministic).
    pub wedge_retries: u32,
    /// Execute at most this many cache misses, deferring the rest as
    /// pending. This is the interrupt: CI's resume test and `--max-jobs`
    /// stop a campaign mid-flight without killing the process.
    pub max_fresh_runs: Option<usize>,
    /// Emit live progress lines to stderr.
    pub progress: bool,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            cache: Some(ResultCache::default_dir()),
            workers: 0,
            resume: true,
            retry_failed: false,
            wedge_retries: 2,
            max_fresh_runs: None,
            progress: true,
        }
    }
}

impl CampaignOptions {
    /// Options for tests and library callers: explicit cache root, no
    /// progress chatter.
    pub fn quiet(cache: Option<ResultCache>) -> Self {
        CampaignOptions {
            cache,
            progress: false,
            ..CampaignOptions::default()
        }
    }
}

/// Where a job's result (or absence of one) came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobSource {
    /// Loaded from the result cache.
    CacheHit,
    /// Freshly simulated this run.
    Executed,
    /// Skipped: the manifest says it already failed and `retry_failed`
    /// is off.
    SkippedFailed,
    /// Deferred: the `max_fresh_runs` interrupt budget ran out.
    Deferred,
}

impl JobSource {
    fn as_str(self) -> &'static str {
        match self {
            JobSource::CacheHit => "cache-hit",
            JobSource::Executed => "executed",
            JobSource::SkippedFailed => "skipped-failed",
            JobSource::Deferred => "deferred",
        }
    }
}

/// One job's outcome within a campaign run.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Display label.
    pub label: String,
    /// Content-addressed key.
    pub key: JobKey,
    /// How the engine resolved this job.
    pub source: JobSource,
    /// Human-readable outcome ("completed", "cache-hit", "wedged after
    /// 3 attempts", ...).
    pub outcome: String,
    /// Simulation attempts spent this run (0 for hits/skips).
    pub attempts: u32,
    /// The result, when the job completed or hit.
    pub result: Option<RunResult>,
    /// Host wall-clock spent resolving this job (includes cache lookup
    /// and retries; microseconds for hits, the full simulation for
    /// executions).
    pub wall: Duration,
}

impl JobRecord {
    /// Simulated cycles this record carries (0 when unresolved).
    pub fn sim_cycles(&self) -> u64 {
        self.result.as_ref().map_or(0, |r| r.stats.cycles)
    }

    /// Host throughput while resolving: simulated cycles per second.
    /// Only meaningful for executed jobs — a cache hit's "throughput"
    /// measures deserialization, not simulation.
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.sim_cycles() as f64 / secs
    }
}

/// Everything a finished campaign run knows about itself.
#[derive(Debug)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Per-job records, in campaign order.
    pub records: Vec<JobRecord>,
    /// Wall-clock time for the whole run.
    pub wall: Duration,
}

impl CampaignReport {
    /// Jobs resolved from the cache.
    pub fn hits(&self) -> usize {
        self.count(JobSource::CacheHit)
    }

    /// Jobs simulated this run.
    pub fn executed(&self) -> usize {
        self.count(JobSource::Executed)
    }

    /// Jobs with no result (failed, skipped, or deferred).
    pub fn unresolved(&self) -> usize {
        self.records.iter().filter(|r| r.result.is_none()).count()
    }

    /// Jobs deferred by the `max_fresh_runs` interrupt budget.
    pub fn deferred(&self) -> usize {
        self.count(JobSource::Deferred)
    }

    fn count(&self, s: JobSource) -> usize {
        self.records.iter().filter(|r| r.source == s).count()
    }

    /// Fraction of all jobs resolved from the cache.
    pub fn hit_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.hits() as f64 / self.records.len() as f64
    }

    /// Unwrap every job's result, in campaign order.
    ///
    /// # Panics
    ///
    /// Panics listing every unresolved job (label and outcome) if any
    /// job failed, was skipped, or was deferred — partial grids must
    /// never silently become figures.
    pub fn expect_completed(&self) -> Vec<RunResult> {
        let missing: Vec<String> = self
            .records
            .iter()
            .filter(|r| r.result.is_none())
            .map(|r| format!("  {} [{}]: {}", r.label, r.source.as_str(), r.outcome))
            .collect();
        if !missing.is_empty() {
            panic!(
                "campaign {:?}: {} of {} jobs unresolved:\n{}",
                self.name,
                missing.len(),
                self.records.len(),
                missing.join("\n")
            );
        }
        self.records
            .iter()
            .map(|r| r.result.clone().expect("checked above"))
            .collect()
    }

    /// Merge one histogram, selected by `pick`, across every completed
    /// job — campaign-level latency distributions without re-binning
    /// (see `Histogram::merge`).
    pub fn merged_hist<F>(&self, pick: F) -> Histogram
    where
        F: Fn(&RunResult) -> &Histogram,
    {
        let mut acc = Histogram::new();
        for r in self.records.iter().filter_map(|r| r.result.as_ref()) {
            acc.merge(pick(r));
        }
        acc
    }

    /// Host-perf distributions over the jobs *executed* this run:
    /// per-job wall milliseconds and simulated cycles per host second.
    /// Both empty when everything came from the cache.
    pub fn host_perf(&self) -> (Histogram, Histogram) {
        let mut wall_ms = Histogram::new();
        let mut cps = Histogram::new();
        for r in self
            .records
            .iter()
            .filter(|r| r.source == JobSource::Executed)
        {
            wall_ms.record(r.wall.as_millis() as u64);
            cps.record(r.cycles_per_sec() as u64);
        }
        (wall_ms, cps)
    }

    /// The report as a JSON document (`emc-campaign-report-v1`).
    pub fn to_json(&self) -> JsonValue {
        let (wall_ms, cps) = self.host_perf();
        JsonValue::obj(vec![
            ("schema", REPORT_SCHEMA.into()),
            ("name", self.name.as_str().into()),
            ("total", (self.records.len() as u64).into()),
            ("cache_hits", (self.hits() as u64).into()),
            ("executed", (self.executed() as u64).into()),
            ("deferred", (self.deferred() as u64).into()),
            ("unresolved", (self.unresolved() as u64).into()),
            ("hit_rate", self.hit_rate().into()),
            ("wall_ms", (self.wall.as_millis() as u64).into()),
            (
                "host_perf",
                JsonValue::obj(vec![
                    ("job_wall_ms", hist_summary_json(&wall_ms)),
                    ("job_cycles_per_sec", hist_summary_json(&cps)),
                ]),
            ),
            (
                "jobs",
                JsonValue::Arr(
                    self.records
                        .iter()
                        .map(|r| {
                            JsonValue::obj(vec![
                                ("label", r.label.as_str().into()),
                                ("key", r.key.0.as_str().into()),
                                ("source", r.source.as_str().into()),
                                ("outcome", r.outcome.as_str().into()),
                                ("attempts", (r.attempts as u64).into()),
                                ("wall_ms", (r.wall.as_millis() as u64).into()),
                                ("cycles_per_sec", r.cycles_per_sec().into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A named, ordered set of jobs to resolve.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Name — also the manifest file stem.
    pub name: String,
    /// The jobs, in presentation order.
    pub jobs: Vec<JobSpec>,
}

impl Campaign {
    /// Define a campaign.
    pub fn new(name: impl Into<String>, jobs: Vec<JobSpec>) -> Self {
        Campaign {
            name: name.into(),
            jobs,
        }
    }

    /// Run every job under `opts` and report how each resolved.
    pub fn run(&self, opts: &CampaignOptions) -> CampaignReport {
        self.run_with(opts, |_| {})
    }

    /// [`run`](Self::run) with a per-job completion callback, invoked
    /// after each job is resolved and journaled (from whichever worker
    /// thread finished it — the callback must be `Sync`). This is the
    /// streaming interface `campaignd` builds its progress events on.
    pub fn run_with<F>(&self, opts: &CampaignOptions, on_job: F) -> CampaignReport
    where
        F: Fn(&JobRecord) + Sync,
    {
        let start = Instant::now();
        let keys: Vec<JobKey> = self.jobs.iter().map(|j| j.key()).collect();

        // Load (or create) the manifest keyed to this exact job list.
        let manifest = self.load_or_fresh_manifest(&keys, opts);
        let prior: Vec<(JobStatus, u32, String)> = manifest
            .entries
            .iter()
            .map(|e| (e.status, e.attempts, e.outcome.clone()))
            .collect();
        let manifest = Mutex::new(manifest);

        let done = AtomicUsize::new(0);
        let hits = AtomicUsize::new(0);
        let fresh = AtomicUsize::new(0);
        let total = self.jobs.len();
        let executor = Executor {
            cache: opts.cache.clone(),
            wedge_retries: opts.wedge_retries,
            tag: format!("campaign {}", self.name),
        };

        let records = parallel_map((0..total).collect::<Vec<usize>>(), opts.workers, |_, &i| {
            let job_start = Instant::now();
            let mut record = self.resolve_one(i, &keys[i], &prior[i], &executor, opts, &fresh);
            record.wall = job_start.elapsed();

            // Journal the job before reporting progress, so a kill
            // after this line never forgets completed work.
            if record.source != JobSource::Deferred {
                let mut m = manifest.lock().expect("manifest lock");
                let entry = &mut m.entries[i];
                entry.status = if record.result.is_some() {
                    JobStatus::Done
                } else {
                    JobStatus::Failed
                };
                entry.attempts += record.attempts;
                entry.outcome = record.outcome.clone();
                // Host-perf is only overwritten by real executions: a
                // warm re-run's cache hit must not clobber the original
                // simulation measurement.
                if record.attempts > 0 {
                    entry.wall_ms = record.wall.as_millis() as u64;
                    entry.sim_cycles = record.sim_cycles();
                }
                if let Some(cache) = &opts.cache {
                    if let Err(e) = m.save(cache.root()) {
                        eprintln!("# campaign {}: {e}", self.name);
                    }
                }
            }

            on_job(&record);
            let d = done.fetch_add(1, Ordering::Relaxed) + 1;
            let h = if record.source == JobSource::CacheHit {
                hits.fetch_add(1, Ordering::Relaxed) + 1
            } else {
                hits.load(Ordering::Relaxed)
            };
            if opts.progress {
                progress_line(&self.name, d, total, h, start.elapsed());
            }
            record
        });
        if opts.progress {
            eprintln!();
        }

        CampaignReport {
            name: self.name.clone(),
            records,
            wall: start.elapsed(),
        }
    }

    /// Resolve job `i`: skip or defer per campaign policy, else hand the
    /// spec to the executor (cache hit or execute with retries).
    fn resolve_one(
        &self,
        i: usize,
        key: &JobKey,
        prior: &(JobStatus, u32, String),
        executor: &Executor,
        opts: &CampaignOptions,
        fresh: &AtomicUsize,
    ) -> JobRecord {
        let spec = &self.jobs[i];
        let mut record = JobRecord {
            label: spec.label.clone(),
            key: key.clone(),
            source: JobSource::Executed,
            outcome: String::new(),
            attempts: 0,
            result: None,
            wall: Duration::ZERO,
        };

        if prior.0 == JobStatus::Failed && !opts.retry_failed {
            record.source = JobSource::SkippedFailed;
            record.outcome = format!("skipped (previously failed: {})", prior.2);
            return record;
        }

        // The deferral budget only charges cache misses, so the cheap
        // hit probe runs first (outside the executor, which would count
        // a miss-then-execute as one opaque resolve).
        if let Some(limit) = opts.max_fresh_runs {
            if let Some(cache) = &opts.cache {
                if let Some(result) = cache.load(spec) {
                    record.source = JobSource::CacheHit;
                    record.outcome = "cache-hit".into();
                    record.result = Some(result);
                    return record;
                }
            }
            if fresh.fetch_add(1, Ordering::Relaxed) >= limit {
                record.source = JobSource::Deferred;
                record.outcome = "deferred (fresh-run budget exhausted)".into();
                return record;
            }
        }

        executor.resolve(spec)
    }

    fn load_or_fresh_manifest(&self, keys: &[JobKey], opts: &CampaignOptions) -> Manifest {
        let job_list: Vec<(JobKey, String)> = keys
            .iter()
            .cloned()
            .zip(self.jobs.iter().map(|j| j.label.clone()))
            .collect();
        let fresh = || Manifest::fresh(&self.name, &job_list);
        let Some(cache) = &opts.cache else {
            return fresh();
        };
        if !opts.resume {
            return fresh();
        }
        match Manifest::load(cache.root(), &self.name) {
            Some(m) if m.id == Manifest::id_of(keys) && m.entries.len() == keys.len() => m,
            Some(_) => {
                eprintln!(
                    "# campaign {}: job list changed; discarding stale manifest",
                    self.name
                );
                fresh()
            }
            None => fresh(),
        }
    }
}

/// Five-number summary of a histogram for report JSON (count, mean,
/// p50/p95/p99) — the full bucket vector stays out of the report.
pub fn hist_summary_json(h: &Histogram) -> JsonValue {
    JsonValue::obj(vec![
        ("count", h.count.into()),
        ("mean", h.mean().into()),
        ("p50", h.p50().into()),
        ("p95", h.p95().into()),
        ("p99", h.p99().into()),
    ])
}

/// Remaining-time estimate extrapolated from throughput so far: the
/// live-progress math shared by the `campaign` CLI's status line and
/// `campaignd`'s per-job progress events. `None` when nothing has
/// finished yet (no throughput to extrapolate) or everything has.
pub fn eta(done: usize, total: usize, elapsed: Duration) -> Option<Duration> {
    if done == 0 || done >= total {
        return None;
    }
    let per_job = elapsed.as_secs_f64() / done as f64;
    Some(Duration::from_secs_f64(per_job * (total - done) as f64))
}

/// One `\r`-terminated progress line: jobs done, hit count/rate, ETA
/// extrapolated from throughput so far.
fn progress_line(name: &str, done: usize, total: usize, hits: usize, elapsed: Duration) {
    let rate = if done > 0 {
        hits as f64 / done as f64 * 100.0
    } else {
        0.0
    };
    let eta = match eta(done, total, elapsed) {
        Some(d) => format!(" · eta {:.0}s", d.as_secs_f64()),
        None => String::new(),
    };
    eprint!("\r# campaign {name}: {done}/{total} · {hits} hits ({rate:.0}%){eta}        ");
}

#[cfg(test)]
mod tests {
    use super::*;
    use emc_types::SystemConfig;
    use emc_workloads::Benchmark;
    use std::path::PathBuf;

    fn tmpcache(tag: &str) -> ResultCache {
        let d: PathBuf =
            std::env::temp_dir().join(format!("emc-engine-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        ResultCache::new(d)
    }

    fn tiny_quad(seed_bump: u64) -> SystemConfig {
        let mut cfg = SystemConfig::quad_core();
        cfg.seed ^= seed_bump;
        cfg
    }

    fn tiny_campaign(cache_tag: u64) -> Campaign {
        // Three distinct jobs (two workloads, two budgets); the seed
        // bump keeps each test's keys out of the others' cache dirs.
        Campaign::new(
            "engine-test",
            vec![
                JobSpec::homog(Benchmark::Mcf, tiny_quad(cache_tag), 400),
                JobSpec::homog(Benchmark::Lbm, tiny_quad(cache_tag), 400),
                JobSpec::homog(Benchmark::Mcf, tiny_quad(cache_tag), 500),
            ],
        )
    }

    #[test]
    fn second_run_is_all_cache_hits() {
        let cache = tmpcache("rerun");
        let root = cache.root().to_path_buf();
        let campaign = tiny_campaign(0);
        let opts = CampaignOptions {
            workers: 2,
            ..CampaignOptions::quiet(Some(cache))
        };

        let cold = campaign.run(&opts);
        assert_eq!(cold.executed(), 3);
        assert_eq!(cold.hits(), 0);
        let cold_results = cold.expect_completed();
        assert_eq!(cold_results.len(), 3);

        // Host-perf journaled: every executed row carries its cycles.
        let m = Manifest::load(&root, "engine-test").expect("manifest");
        for e in &m.entries {
            assert!(e.sim_cycles > 0, "{}: execution measured", e.label);
        }
        let cold_cycles: Vec<u64> = m.entries.iter().map(|e| e.sim_cycles).collect();

        let warm = campaign.run(&opts);
        assert_eq!(warm.hits(), 3, "everything cached");
        assert_eq!(warm.executed(), 0);
        assert!((warm.hit_rate() - 1.0).abs() < 1e-12);

        // The warm run's cache hits must not clobber the execution
        // measurements (attempts == 0 rows leave host-perf alone).
        let m = Manifest::load(&root, "engine-test").expect("manifest");
        let warm_cycles: Vec<u64> = m.entries.iter().map(|e| e.sim_cycles).collect();
        assert_eq!(cold_cycles, warm_cycles, "hits preserve host-perf");

        // Hits reproduce the executed statistics exactly.
        let warm_results = warm.expect_completed();
        for (a, b) in cold_results.iter().zip(&warm_results) {
            assert_eq!(a.stats.cycles, b.stats.cycles);
            assert_eq!(a.ipcs, b.ipcs);
        }
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn interrupted_campaign_resumes_without_rerunning() {
        let cache = tmpcache("resume");
        let root = cache.root().to_path_buf();
        let campaign = tiny_campaign(1);

        // "Interrupt" after one fresh run.
        let interrupted = campaign.run(&CampaignOptions {
            workers: 1,
            max_fresh_runs: Some(1),
            ..CampaignOptions::quiet(Some(ResultCache::new(&root)))
        });
        assert_eq!(interrupted.executed(), 1);
        assert_eq!(interrupted.deferred(), 2);

        let m = Manifest::load(&root, "engine-test").expect("manifest persisted");
        assert_eq!(
            m.done_count(),
            1,
            "completed job journaled before interrupt"
        );

        // Resume: the completed job is a hit, only the remainder runs.
        let resumed = campaign.run(&CampaignOptions {
            workers: 1,
            ..CampaignOptions::quiet(Some(ResultCache::new(&root)))
        });
        assert_eq!(resumed.hits(), 1, "finished job not re-executed");
        assert_eq!(resumed.executed(), 2);
        resumed.expect_completed();
        let m = Manifest::load(&root, "engine-test").unwrap();
        assert_eq!(m.done_count(), 3);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn no_cache_means_every_job_executes() {
        let campaign = Campaign::new(
            "uncached",
            vec![JobSpec::homog(Benchmark::Mcf, tiny_quad(2), 300)],
        );
        let opts = CampaignOptions::quiet(None);
        let r1 = campaign.run(&opts);
        let r2 = campaign.run(&opts);
        assert_eq!(r1.executed() + r2.executed(), 2);
        assert_eq!(r1.hits() + r2.hits(), 0);
    }

    #[test]
    fn report_json_is_well_formed() {
        let cache = tmpcache("report");
        let root = cache.root().to_path_buf();
        let campaign = Campaign::new(
            "report-test",
            vec![JobSpec::homog(Benchmark::Lbm, tiny_quad(3), 300)],
        );
        let report = campaign.run(&CampaignOptions::quiet(Some(cache)));
        let doc = JsonValue::parse(&report.to_json().to_json()).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some(REPORT_SCHEMA)
        );
        assert_eq!(doc.get("total").and_then(|v| v.as_f64()), Some(1.0));
        assert_eq!(
            doc.get("jobs")
                .and_then(|j| j.idx(0))
                .and_then(|j| j.get("source"))
                .and_then(|v| v.as_str()),
            Some("executed")
        );
        // Host-perf rides along: one executed job in the distribution,
        // and the per-job row carries a non-negative throughput.
        assert_eq!(
            doc.get("host_perf")
                .and_then(|h| h.get("job_wall_ms"))
                .and_then(|h| h.get("count"))
                .and_then(|v| v.as_f64()),
            Some(1.0)
        );
        assert!(
            doc.get("jobs")
                .and_then(|j| j.idx(0))
                .and_then(|j| j.get("cycles_per_sec"))
                .and_then(|v| v.as_f64())
                .is_some_and(|c| c >= 0.0),
            "executed job reports throughput"
        );
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn retry_policy_retries_transient_wedges_within_budget() {
        for class in [
            WedgeClass::McStarvation { mcs: vec![0] },
            WedgeClass::RingBackpressure { backlog: 2_000 },
            WedgeClass::SlowButLive,
        ] {
            assert_eq!(
                retry_decision(RunOutcome::Wedged, Some(&class), 1, 2, false),
                RetryDecision::Retry,
                "{class} is transient"
            );
            assert_eq!(
                retry_decision(RunOutcome::Wedged, Some(&class), 3, 2, false),
                RetryDecision::Fail,
                "{class} past the retry budget"
            );
        }
        // Unclassified wedges (pre-classifier reports) stay retryable.
        assert_eq!(
            retry_decision(RunOutcome::Wedged, None, 1, 2, false),
            RetryDecision::Retry
        );
    }

    #[test]
    fn retry_policy_never_retries_deterministic_wedges() {
        for class in [
            WedgeClass::EmcContextLeak {
                contexts: vec![(0, 1)],
            },
            WedgeClass::CoreDeadlock { cores: vec![2] },
        ] {
            assert_eq!(
                retry_decision(RunOutcome::Wedged, Some(&class), 1, 5, false),
                RetryDecision::Fail,
                "{class} is deterministic — retrying repeats it"
            );
        }
    }

    #[test]
    fn retry_policy_extends_cap_once_for_live_cap_hits() {
        let live = WedgeClass::SlowButLive;
        assert_eq!(
            retry_decision(RunOutcome::CapHit, Some(&live), 1, 2, false),
            RetryDecision::ExtendCap
        );
        assert_eq!(
            retry_decision(RunOutcome::CapHit, Some(&live), 2, 2, true),
            RetryDecision::Fail,
            "the extension is granted exactly once"
        );
        let dead = WedgeClass::CoreDeadlock { cores: vec![0] };
        assert_eq!(
            retry_decision(RunOutcome::CapHit, Some(&dead), 1, 2, false),
            RetryDecision::Fail,
            "a deadlocked cap hit gains nothing from more cycles"
        );
        assert_eq!(
            retry_decision(RunOutcome::CapHit, None, 1, 2, false),
            RetryDecision::Fail,
            "an unclassified cap hit is treated as deterministic"
        );
    }

    #[test]
    fn executor_is_reentrant_and_shared_across_threads() {
        let cache = tmpcache("executor");
        let root = cache.root().to_path_buf();
        let executor = Executor::new(Some(cache)).with_tag("executor-test");
        let specs: Vec<JobSpec> = (0..4)
            .map(|i| JobSpec::homog(Benchmark::Mcf, tiny_quad(100 + i), 300))
            .collect();

        // One executor, four threads, concurrent `&self` resolves.
        let records: Vec<JobRecord> = std::thread::scope(|s| {
            specs
                .iter()
                .map(|spec| s.spawn(|| executor.resolve(spec)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("no panics"))
                .collect()
        });
        for r in &records {
            assert_eq!(r.source, JobSource::Executed);
            assert!(r.result.is_some(), "{}: {}", r.label, r.outcome);
            assert!(r.wall > Duration::ZERO, "resolve measures its own wall");
        }

        // Second pass resolves from the cache.
        for spec in &specs {
            let r = executor.resolve(spec);
            assert_eq!(r.source, JobSource::CacheHit);
            assert_eq!(r.attempts, 0);
        }
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn run_with_fires_completion_callback_per_job() {
        let cache = tmpcache("callback");
        let root = cache.root().to_path_buf();
        let campaign = tiny_campaign(5);
        let seen = Mutex::new(Vec::new());
        let report = campaign.run_with(
            &CampaignOptions {
                workers: 2,
                ..CampaignOptions::quiet(Some(cache))
            },
            |record| {
                seen.lock()
                    .unwrap()
                    .push((record.label.clone(), record.result.is_some()));
            },
        );
        let mut seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), report.records.len());
        seen.sort();
        let mut expected: Vec<(String, bool)> = report
            .records
            .iter()
            .map(|r| (r.label.clone(), r.result.is_some()))
            .collect();
        expected.sort();
        assert_eq!(seen, expected, "callback saw every record exactly once");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn eta_extrapolates_from_throughput() {
        assert_eq!(eta(0, 10, Duration::from_secs(5)), None, "no data yet");
        assert_eq!(eta(10, 10, Duration::from_secs(5)), None, "finished");
        assert_eq!(eta(3, 3, Duration::ZERO), None);
        // 4 done in 8s → 2s/job → 12s for the remaining 6.
        let e = eta(4, 10, Duration::from_secs(8)).expect("mid-flight");
        assert!((e.as_secs_f64() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn merged_hist_aggregates_across_jobs() {
        let cache = tmpcache("hist");
        let root = cache.root().to_path_buf();
        let campaign = tiny_campaign(4);
        let report = campaign.run(&CampaignOptions::quiet(Some(cache)));
        let merged = report.merged_hist(|r| &r.stats.mem.core_miss_latency);
        let sum: u64 = report
            .expect_completed()
            .iter()
            .map(|r| r.stats.mem.core_miss_latency.count)
            .sum();
        assert_eq!(merged.count, sum, "merge preserves total sample count");
        let _ = std::fs::remove_dir_all(root);
    }
}
