//! Concurrency property of the content-addressed result cache: two
//! executors resolving the *same* spec at the same time — the exact
//! shape two campaignd tenants produce when they submit overlapping
//! suites — must converge on one cache entry with byte-identical
//! content, never a torn or duplicated file. The cache's atomic
//! temp-file + rename writes make the race benign: both sides may
//! execute, but the loser's rename lands the same bytes (simulation is
//! deterministic per key), and every later resolve is a hit.

use std::sync::{Arc, Barrier};

use emc_campaign::{Executor, JobSource, JobSpec, ResultCache};
use emc_types::SystemConfig;
use emc_workloads::mix_by_name;

fn tmp_cache(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("emc-concurrent-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_spec(seed: u64) -> JobSpec {
    let mut cfg = SystemConfig::quad_core();
    cfg.seed = seed;
    JobSpec::mix("H1", mix_by_name("H1").unwrap(), cfg, 300)
}

#[test]
fn racing_executors_converge_on_one_byte_identical_entry() {
    let dir = tmp_cache("race");
    let spec = small_spec(0xcafe);
    let key = spec.key();

    // Two independent Executor instances (distinct ResultCache handles,
    // same directory), released through a barrier to maximize overlap.
    let barrier = Arc::new(Barrier::new(2));
    let records: Vec<_> = (0..2)
        .map(|i| {
            let dir = dir.clone();
            let spec = spec.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let exec = Executor::new(Some(ResultCache::new(&dir))).with_tag(format!("t{i}"));
                barrier.wait();
                exec.resolve(&spec)
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("racer panicked"))
        .collect();

    // Both resolve successfully; at most one *needed* to execute, but
    // even a double-execution must agree (deterministic simulation).
    for r in &records {
        assert!(r.result.is_some(), "racer failed: {}", r.outcome);
        assert_eq!(r.key, key);
    }

    // Exactly one entry on disk.
    let cache = ResultCache::new(&dir);
    assert_eq!(
        cache.entry_count(),
        1,
        "the race must not duplicate entries"
    );
    let path = cache.path_of(&key);
    let bytes = std::fs::read(&path).expect("entry exists at the content address");
    assert!(!bytes.is_empty());

    // A third resolve is a pure hit whose stored bytes are untouched.
    let exec = Executor::new(Some(ResultCache::new(&dir)));
    let replay = exec.resolve(&spec);
    assert_eq!(replay.source, JobSource::CacheHit);
    let bytes_after = std::fs::read(&path).unwrap();
    assert_eq!(bytes, bytes_after, "a hit must never rewrite the entry");

    // The hit's payload equals what the racers computed.
    let winner = records[0].result.as_ref().unwrap();
    let replayed = replay.result.as_ref().unwrap();
    assert_eq!(
        emc_campaign::run_result_to_json(winner).to_json(),
        emc_campaign::run_result_to_json(replayed).to_json(),
        "cached result must be byte-identical to the computed one"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn many_racers_over_a_small_spec_pool_stay_consistent() {
    let dir = tmp_cache("pool");
    // 8 threads over 3 distinct specs: every spec is raced by at least
    // two threads, exercising store/load interleavings beyond pairs.
    let specs: Vec<JobSpec> = (0..3).map(|i| small_spec(0x1000 + i)).collect();
    let barrier = Arc::new(Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let dir = dir.clone();
            let spec = specs[i % specs.len()].clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let exec = Executor::new(Some(ResultCache::new(&dir)));
                barrier.wait();
                exec.resolve(&spec)
            })
        })
        .collect();
    let records: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("racer panicked"))
        .collect();

    for r in &records {
        assert!(r.result.is_some(), "racer failed: {}", r.outcome);
    }
    let cache = ResultCache::new(&dir);
    assert_eq!(cache.entry_count(), specs.len());

    // Every spec's stored entry round-trips to the same result all its
    // racers returned.
    for spec in &specs {
        let stored = cache.load(spec).expect("entry for every raced spec");
        let stored_json = emc_campaign::run_result_to_json(&stored).to_json();
        for r in records.iter().filter(|r| r.key == spec.key()) {
            assert_eq!(
                emc_campaign::run_result_to_json(r.result.as_ref().unwrap()).to_json(),
                stored_json
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
