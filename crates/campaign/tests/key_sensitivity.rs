//! Property tests for the content-addressed job key: perturbing *any*
//! `SystemConfig` field, the seed, the budget, or the workload mix must
//! change the key, and equal specs must always agree on it. The mutator
//! table below names every field the canonical encoding covers; a field
//! added to the config without a mutator here still fails compilation in
//! `spec.rs` (the `..`-free destructuring), so the two lists can only
//! drift loudly.

use emc_campaign::JobSpec;
use emc_types::{PrefetcherKind, SystemConfig};
use emc_workloads::{mix_by_name, Benchmark};
use proptest::prelude::*;

fn base_spec(seed: u64, budget: u64) -> JobSpec {
    let mut cfg = SystemConfig::quad_core();
    cfg.seed = seed;
    JobSpec::mix("H1", mix_by_name("H1").unwrap(), cfg, budget)
}

/// A nonzero perturbation of one identity-bearing field. `d` is a
/// positive magnitude from the property strategy; every mutator must
/// change the spec for every `d >= 1`.
type Mutator = (&'static str, fn(&mut JobSpec, u64));

fn mutators() -> Vec<Mutator> {
    fn du(v: &mut u64, d: u64) {
        *v = v.wrapping_add(d.max(1));
    }
    fn dus(v: &mut usize, d: u64) {
        *v = v.wrapping_add(d.max(1) as usize);
    }
    fn df(v: &mut f64, d: u64) {
        *v += d.max(1) as f64 * 0.125;
    }
    vec![
        // Job identity outside the config.
        ("budget", |s, d| du(&mut s.budget, d)),
        ("benches", |s, d| {
            let all = Benchmark::all();
            let i = (d as usize) % s.benches.len();
            let cur = s.benches[i];
            s.benches[i] = all.into_iter().find(|b| *b != cur).unwrap();
        }),
        // SystemConfig scalars.
        ("cores", |s, d| dus(&mut s.cfg.cores, d)),
        ("memory_controllers", |s, d| {
            dus(&mut s.cfg.memory_controllers, d)
        }),
        ("seed", |s, d| du(&mut s.cfg.seed, d)),
        ("ideal_dependent_hits", |s, _| {
            s.cfg.ideal_dependent_hits = !s.cfg.ideal_dependent_hits
        }),
        ("prefetcher", |s, d| {
            let others: Vec<PrefetcherKind> = PrefetcherKind::ALL
                .into_iter()
                .filter(|p| *p != s.cfg.prefetcher)
                .collect();
            s.cfg.prefetcher = others[(d as usize) % others.len()];
        }),
        // Core.
        ("core.fetch_width", |s, d| {
            dus(&mut s.cfg.core.fetch_width, d)
        }),
        ("core.issue_width", |s, d| {
            dus(&mut s.cfg.core.issue_width, d)
        }),
        ("core.retire_width", |s, d| {
            dus(&mut s.cfg.core.retire_width, d)
        }),
        ("core.rob_entries", |s, d| {
            dus(&mut s.cfg.core.rob_entries, d)
        }),
        ("core.rs_entries", |s, d| dus(&mut s.cfg.core.rs_entries, d)),
        ("core.lsq_entries", |s, d| {
            dus(&mut s.cfg.core.lsq_entries, d)
        }),
        ("core.mispredict_penalty", |s, d| {
            du(&mut s.cfg.core.mispredict_penalty, d)
        }),
        ("core.bp_table_entries", |s, d| {
            dus(&mut s.cfg.core.bp_table_entries, d)
        }),
        ("core.runahead", |s, _| {
            s.cfg.core.runahead = !s.cfg.core.runahead
        }),
        // L1 / LLC slice.
        ("l1.bytes", |s, d| du(&mut s.cfg.l1.bytes, d)),
        ("l1.ways", |s, d| dus(&mut s.cfg.l1.ways, d)),
        ("l1.latency", |s, d| du(&mut s.cfg.l1.latency, d)),
        ("l1.mshrs", |s, d| dus(&mut s.cfg.l1.mshrs, d)),
        ("llc_slice.bytes", |s, d| du(&mut s.cfg.llc_slice.bytes, d)),
        ("llc_slice.ways", |s, d| dus(&mut s.cfg.llc_slice.ways, d)),
        ("llc_slice.latency", |s, d| {
            du(&mut s.cfg.llc_slice.latency, d)
        }),
        ("llc_slice.mshrs", |s, d| dus(&mut s.cfg.llc_slice.mshrs, d)),
        // Ring.
        ("ring.link_cycles", |s, d| {
            du(&mut s.cfg.ring.link_cycles, d)
        }),
        ("ring.stop_cycles", |s, d| {
            du(&mut s.cfg.ring.stop_cycles, d)
        }),
        // DRAM.
        ("dram.channels", |s, d| dus(&mut s.cfg.dram.channels, d)),
        ("dram.ranks_per_channel", |s, d| {
            dus(&mut s.cfg.dram.ranks_per_channel, d)
        }),
        ("dram.banks_per_rank", |s, d| {
            dus(&mut s.cfg.dram.banks_per_rank, d)
        }),
        ("dram.row_bytes", |s, d| du(&mut s.cfg.dram.row_bytes, d)),
        ("dram.t_cas", |s, d| du(&mut s.cfg.dram.t_cas, d)),
        ("dram.t_rcd", |s, d| du(&mut s.cfg.dram.t_rcd, d)),
        ("dram.t_rp", |s, d| du(&mut s.cfg.dram.t_rp, d)),
        ("dram.t_ras", |s, d| du(&mut s.cfg.dram.t_ras, d)),
        ("dram.t_burst", |s, d| du(&mut s.cfg.dram.t_burst, d)),
        ("dram.queue_entries", |s, d| {
            dus(&mut s.cfg.dram.queue_entries, d)
        }),
        // Prefetch knobs.
        ("prefetch.stream_count", |s, d| {
            dus(&mut s.cfg.prefetch.stream_count, d)
        }),
        ("prefetch.stream_distance", |s, d| {
            du(&mut s.cfg.prefetch.stream_distance, d)
        }),
        ("prefetch.markov_entries", |s, d| {
            dus(&mut s.cfg.prefetch.markov_entries, d)
        }),
        ("prefetch.markov_fanout", |s, d| {
            dus(&mut s.cfg.prefetch.markov_fanout, d)
        }),
        ("prefetch.ghb_entries", |s, d| {
            dus(&mut s.cfg.prefetch.ghb_entries, d)
        }),
        ("prefetch.ghb_index_entries", |s, d| {
            dus(&mut s.cfg.prefetch.ghb_index_entries, d)
        }),
        ("prefetch.fdp_min_degree", |s, d| {
            dus(&mut s.cfg.prefetch.fdp_min_degree, d)
        }),
        ("prefetch.fdp_max_degree", |s, d| {
            dus(&mut s.cfg.prefetch.fdp_max_degree, d)
        }),
        ("prefetch.fdp_high_accuracy", |s, d| {
            df(&mut s.cfg.prefetch.fdp_high_accuracy, d)
        }),
        ("prefetch.fdp_low_accuracy", |s, d| {
            df(&mut s.cfg.prefetch.fdp_low_accuracy, d)
        }),
        ("prefetch.fdp_interval", |s, d| {
            du(&mut s.cfg.prefetch.fdp_interval, d)
        }),
        // EMC.
        ("emc.enabled", |s, _| s.cfg.emc.enabled = !s.cfg.emc.enabled),
        ("emc.contexts", |s, d| dus(&mut s.cfg.emc.contexts, d)),
        ("emc.uop_buffer", |s, d| dus(&mut s.cfg.emc.uop_buffer, d)),
        ("emc.prf_entries", |s, d| dus(&mut s.cfg.emc.prf_entries, d)),
        ("emc.live_in_entries", |s, d| {
            dus(&mut s.cfg.emc.live_in_entries, d)
        }),
        ("emc.lsq_entries", |s, d| dus(&mut s.cfg.emc.lsq_entries, d)),
        ("emc.rs_entries", |s, d| dus(&mut s.cfg.emc.rs_entries, d)),
        ("emc.issue_width", |s, d| dus(&mut s.cfg.emc.issue_width, d)),
        ("emc.tlb_entries", |s, d| dus(&mut s.cfg.emc.tlb_entries, d)),
        ("emc.dcache_bytes", |s, d| {
            du(&mut s.cfg.emc.dcache_bytes, d)
        }),
        ("emc.dcache_ways", |s, d| dus(&mut s.cfg.emc.dcache_ways, d)),
        ("emc.dcache_latency", |s, d| {
            du(&mut s.cfg.emc.dcache_latency, d)
        }),
        ("emc.miss_pred_entries", |s, d| {
            dus(&mut s.cfg.emc.miss_pred_entries, d)
        }),
        // u8 fields: fold `d` into 1..=255 so no delta wraps to a no-op.
        ("emc.miss_pred_threshold", |s, d| {
            s.cfg.emc.miss_pred_threshold = s
                .cfg
                .emc
                .miss_pred_threshold
                .wrapping_add((d % 255) as u8 + 1)
        }),
        ("emc.dep_counter_trigger", |s, d| {
            s.cfg.emc.dep_counter_trigger = s
                .cfg
                .emc
                .dep_counter_trigger
                .wrapping_add((d % 255) as u8 + 1)
        }),
        ("emc.chain_candidates", |s, d| {
            dus(&mut s.cfg.emc.chain_candidates, d)
        }),
        ("emc.quiesce_threshold", |s, d| {
            s.cfg.emc.quiesce_threshold = s.cfg.emc.quiesce_threshold.wrapping_add(d.max(1) as u32)
        }),
        ("emc.quiesce_backoff", |s, d| {
            du(&mut s.cfg.emc.quiesce_backoff, d)
        }),
        ("emc.quiesce_backoff_max", |s, d| {
            du(&mut s.cfg.emc.quiesce_backoff_max, d)
        }),
        // Fault plan.
        ("faults.enabled", |s, _| {
            s.cfg.faults.enabled = !s.cfg.faults.enabled
        }),
        ("faults.ring_delay_prob", |s, d| {
            df(&mut s.cfg.faults.ring_delay_prob, d)
        }),
        ("faults.ring_delay_cycles", |s, d| {
            du(&mut s.cfg.faults.ring_delay_cycles, d)
        }),
        ("faults.dram_reissue_prob", |s, d| {
            df(&mut s.cfg.faults.dram_reissue_prob, d)
        }),
        ("faults.dram_reissue_penalty", |s, d| {
            du(&mut s.cfg.faults.dram_reissue_penalty, d)
        }),
        ("faults.emc_kill_prob", |s, d| {
            df(&mut s.cfg.faults.emc_kill_prob, d)
        }),
        ("faults.mc_storm_prob", |s, d| {
            df(&mut s.cfg.faults.mc_storm_prob, d)
        }),
        ("faults.mc_storm_cycles", |s, d| {
            du(&mut s.cfg.faults.mc_storm_cycles, d)
        }),
    ]
}

/// Every mutator, applied with the smallest magnitude, changes the key —
/// no config field is invisible to the content hash.
#[test]
fn every_field_perturbation_changes_the_key() {
    let base = base_spec(0x5eed, 30_000);
    let base_key = base.key();
    for (name, m) in mutators() {
        let mut s = base.clone();
        m(&mut s, 1);
        assert_ne!(base_key, s.key(), "perturbing {name} must change the key");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random field, random magnitude: the key always moves, and the
    /// same perturbation applied to a fresh spec lands on the same key
    /// (the hash is a pure function of the spec).
    #[test]
    fn perturbed_specs_never_collide_with_their_base(
        which in 0usize..mutators().len(),
        delta in 1u64..1_000_000,
        seed in 0u64..u64::MAX,
        budget in 1u64..1u64 << 40,
    ) {
        let table = mutators();
        let (name, m) = table[which];
        let base = base_spec(seed, budget);

        let mut a = base.clone();
        m(&mut a, delta);
        // The stub proptest's assert macros take no format args; bake
        // the mutator name into a plain assert instead.
        assert_ne!(base.key(), a.key(), "mutator {name} at delta {delta}");

        let mut b = base.clone();
        m(&mut b, delta);
        assert_eq!(a.key(), b.key(), "key must be deterministic ({name})");
    }

    /// Two *different* workload mixes never share a key, whatever the
    /// seed/budget (benches are part of the canonical encoding).
    #[test]
    fn distinct_mixes_hash_apart(seed in 0u64..u64::MAX, budget in 1u64..1u64 << 40) {
        let mut cfg = SystemConfig::quad_core();
        cfg.seed = seed;
        let a = JobSpec::mix("H1", mix_by_name("H1").unwrap(), cfg.clone(), budget);
        let b = JobSpec::mix("H2", mix_by_name("H2").unwrap(), cfg, budget);
        // Same label on purpose: only the benches differ.
        prop_assert_ne!(a.with_label("x").key(), b.with_label("x").key());
    }
}
