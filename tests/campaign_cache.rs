//! End-to-end campaign acceptance tests (ISSUE: campaign engine).
//!
//! Drives the full stack — workload synthesis, the cycle simulator, the
//! energy model, and the campaign engine — through the public meta-crate
//! surface, and asserts the two cache guarantees the figure harnesses
//! rely on: an identical re-run is 100% cache hits with byte-identical
//! entries on disk, and an interrupted campaign resumes without
//! re-executing completed jobs.

use emc_repro::emc_campaign::{Campaign, CampaignOptions, Manifest, ResultCache};
use emc_repro::emc_campaign::{JobSpec, DEFAULT_CACHE_DIR};
use emc_repro::{Benchmark, SystemConfig};
use std::path::PathBuf;

fn tmp_root(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("emc-campaign-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Four distinct real jobs at a tiny budget: two workloads, with and
/// without the EMC.
fn jobs() -> Vec<JobSpec> {
    let emc = SystemConfig::quad_core();
    let mut no_emc = SystemConfig::quad_core();
    no_emc.emc.enabled = false;
    vec![
        JobSpec::homog(Benchmark::Mcf, emc.clone(), 600),
        JobSpec::homog(Benchmark::Mcf, no_emc.clone(), 600),
        JobSpec::homog(Benchmark::Libquantum, emc, 600),
        JobSpec::homog(Benchmark::Libquantum, no_emc, 600),
    ]
}

fn quiet(root: &PathBuf) -> CampaignOptions {
    CampaignOptions::quiet(Some(ResultCache::new(root)))
}

#[test]
fn repeat_campaign_is_all_hits_with_byte_identical_entries() {
    let root = tmp_root("repeat");
    let campaign = Campaign::new("it-repeat", jobs());

    let cold = campaign.run(&quiet(&root));
    assert_eq!(cold.executed(), 4);
    assert_eq!(cold.hits(), 0);
    let cold_results = cold.expect_completed();

    // Snapshot every cache entry byte-for-byte.
    let cache = ResultCache::new(&root);
    let snapshot: Vec<(PathBuf, Vec<u8>)> = campaign
        .jobs
        .iter()
        .map(|j| {
            let p = cache.path_of(&j.key());
            let bytes = std::fs::read(&p).expect("entry exists after cold run");
            (p, bytes)
        })
        .collect();

    let warm = campaign.run(&quiet(&root));
    assert_eq!(warm.hits(), 4, "identical re-run must be 100% cache hits");
    assert_eq!(warm.executed(), 0);
    assert!(warm.hit_rate() >= 0.9, "acceptance floor");

    // The warm run reproduced the cold statistics and left every entry
    // untouched on disk.
    for (a, b) in cold_results.iter().zip(&warm.expect_completed()) {
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.ipcs, b.ipcs);
        assert_eq!(a.energy.total_j(), b.energy.total_j());
    }
    for (p, before) in &snapshot {
        assert_eq!(
            &std::fs::read(p).unwrap(),
            before,
            "{} changed",
            p.display()
        );
    }
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn interrupted_campaign_resumes_from_manifest() {
    let root = tmp_root("resume");
    let campaign = Campaign::new("it-resume", jobs());

    // Interrupt after two fresh runs.
    let first = campaign.run(&CampaignOptions {
        max_fresh_runs: Some(2),
        ..quiet(&root)
    });
    assert_eq!(first.executed(), 2);
    assert_eq!(first.deferred(), 2);
    let m = Manifest::load(&root, "it-resume").expect("manifest journaled");
    assert_eq!(
        m.done_count(),
        2,
        "completed jobs journaled before interrupt"
    );

    // Resume: completed jobs come from the cache, only the rest execute.
    let second = campaign.run(&quiet(&root));
    assert_eq!(second.hits(), 2, "completed jobs must not re-execute");
    assert_eq!(second.executed(), 2);
    second.expect_completed();
    assert_eq!(
        Manifest::load(&root, "it-resume").unwrap().done_count(),
        4,
        "manifest records the whole campaign done"
    );
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn relabeled_and_reordered_specs_still_hit() {
    // Cross-figure dedup: fig1/fig6/tab2 request the same baseline jobs
    // under different labels and orders — all must be cache hits.
    let root = tmp_root("dedup");
    let first = Campaign::new("it-dedup-a", jobs());
    first.run(&quiet(&root)).expect_completed();

    let mut renamed = jobs();
    renamed.reverse();
    let relabeled: Vec<JobSpec> = renamed
        .into_iter()
        .enumerate()
        .map(|(i, j)| j.with_label(format!("other-figure-{i}")))
        .collect();
    let second = Campaign::new("it-dedup-b", relabeled).run(&quiet(&root));
    assert_eq!(second.hits(), 4, "labels and order are not identity");
    for (i, r) in second.records.iter().enumerate() {
        let result = r.result.as_ref().expect("hit");
        assert_eq!(
            result.workload,
            format!("other-figure-{i}"),
            "label rewritten"
        );
    }
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn default_cache_dir_is_results_cache() {
    // EXPERIMENTS.md documents this layout; keep the constant honest.
    assert_eq!(DEFAULT_CACHE_DIR, "results/cache");
}
