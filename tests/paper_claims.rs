//! Integration tests asserting the paper's qualitative claims end-to-end
//! (small budgets; the full-scale numbers live in EXPERIMENTS.md).

use emc_repro::{run_homogeneous, run_mix, Benchmark, PrefetcherKind, SystemConfig};

const BUDGET: u64 = 6_000;

#[test]
fn dependent_miss_fractions_match_figure2_ordering() {
    // mcf: essentially all misses dependent; libquantum: none (Figure 2).
    let mcf = run_homogeneous(
        SystemConfig::quad_core().without_emc(),
        Benchmark::Mcf,
        BUDGET,
    )
    .expect_completed();
    let libq = run_homogeneous(
        SystemConfig::quad_core().without_emc(),
        Benchmark::Libquantum,
        BUDGET,
    )
    .expect_completed();
    assert!(
        mcf.cores[0].dependent_miss_fraction() > 0.5,
        "mcf dependent fraction: {}",
        mcf.cores[0].dependent_miss_fraction()
    );
    assert!(
        libq.cores[0].dependent_miss_fraction() < 0.05,
        "libquantum dependent fraction: {}",
        libq.cores[0].dependent_miss_fraction()
    );
    // And mcf is the most memory-intensive benchmark (Table 2 / Figure 1).
    assert!(mcf.cores[0].mpki() > 10.0);
    assert!(libq.cores[0].mpki() > 10.0);
}

#[test]
fn emc_issued_misses_observe_lower_latency() {
    // The paper's 20%-lower-latency claim (Figure 18), directionally.
    let stats =
        run_homogeneous(SystemConfig::quad_core(), Benchmark::Omnetpp, BUDGET).expect_completed();
    let core = stats.mem.core_miss_latency.mean();
    let emc = stats.mem.emc_miss_latency.mean();
    assert!(stats.emc.chains_executed > 0, "EMC must engage on omnetpp");
    assert!(emc > 0.0 && core > 0.0);
    assert!(
        emc < core,
        "EMC-issued misses must be faster: EMC {emc:.0} vs core {core:.0} cycles"
    );
}

#[test]
fn emc_accelerates_pointer_chasing() {
    // Figure 13's qualitative claim: benchmarks with many dependent
    // misses benefit from the EMC.
    let base = run_homogeneous(
        SystemConfig::quad_core().without_emc(),
        Benchmark::Omnetpp,
        BUDGET,
    )
    .expect_completed();
    let emc =
        run_homogeneous(SystemConfig::quad_core(), Benchmark::Omnetpp, BUDGET).expect_completed();
    let b: f64 = base.cores.iter().map(|c| c.ipc()).sum();
    let e: f64 = emc.cores.iter().map(|c| c.ipc()).sum();
    assert!(
        e > b * 1.01,
        "EMC must speed up omnetpp: base {b:.3}, emc {e:.3}"
    );
}

#[test]
fn emc_leaves_streaming_workloads_roughly_alone() {
    // lbm has no dependent misses (Figure 2): the EMC neither engages
    // meaningfully nor wrecks it.
    let base = run_homogeneous(
        SystemConfig::quad_core().without_emc(),
        Benchmark::Lbm,
        BUDGET,
    )
    .expect_completed();
    let emc = run_homogeneous(SystemConfig::quad_core(), Benchmark::Lbm, BUDGET).expect_completed();
    let b: f64 = base.cores.iter().map(|c| c.ipc()).sum();
    let e: f64 = emc.cores.iter().map(|c| c.ipc()).sum();
    assert!(
        e > b * 0.9,
        "EMC must not slow lbm much: base {b:.3}, emc {e:.3}"
    );
    let chains: u64 = emc.cores.iter().map(|c| c.chains_sent).sum();
    assert_eq!(chains, 0, "no dependence chains exist in lbm");
}

#[test]
fn chains_match_figure22_bounds() {
    let stats =
        run_homogeneous(SystemConfig::quad_core(), Benchmark::Mcf, BUDGET).expect_completed();
    let mean = stats.mean_chain_uops();
    assert!(stats.emc.chains_executed > 0);
    assert!(mean > 2.0 && mean <= 16.0, "chain length {mean}");
    // Live-ins are modest (paper: 6.4 average).
    let chains: u64 = stats.cores.iter().map(|c| c.chains_sent).sum();
    let live_ins: u64 = stats.cores.iter().map(|c| c.chain_live_ins).sum();
    assert!(live_ins as f64 / chains as f64 <= 16.0);
}

#[test]
fn prefetchers_cover_streams_not_chases() {
    // Figure 3: pattern prefetchers cover few dependent misses.
    let cfg = SystemConfig::quad_core()
        .without_emc()
        .with_prefetcher(PrefetcherKind::Stream);
    let libq = run_homogeneous(cfg.clone(), Benchmark::Libquantum, BUDGET).expect_completed();
    assert!(
        libq.prefetch.useful > 0,
        "stream prefetcher must cover libquantum"
    );
    let mcf = run_homogeneous(cfg, Benchmark::Mcf, BUDGET).expect_completed();
    let covered: u64 = mcf
        .cores
        .iter()
        .map(|c| c.dependent_misses_prefetched)
        .sum();
    let dep: u64 = mcf.cores.iter().map(|c| c.dependent_llc_misses).sum();
    let frac = covered as f64 / (covered + dep).max(1) as f64;
    assert!(
        frac < 0.5,
        "stream prefetcher must not cover mcf's chases: {frac}"
    );
}

#[test]
fn ideal_dependent_hits_shows_figure2_headroom() {
    let mut ideal_cfg = SystemConfig::quad_core().without_emc();
    ideal_cfg.ideal_dependent_hits = true;
    let base = run_homogeneous(
        SystemConfig::quad_core().without_emc(),
        Benchmark::Mcf,
        BUDGET,
    )
    .expect_completed();
    let ideal = run_homogeneous(ideal_cfg, Benchmark::Mcf, BUDGET).expect_completed();
    let b: f64 = base.cores.iter().map(|c| c.ipc()).sum();
    let i: f64 = ideal.cores.iter().map(|c| c.ipc()).sum();
    assert!(
        i > b * 1.3,
        "making mcf's dependent misses hits must give a large speedup: {b:.3} -> {i:.3}"
    );
}

#[test]
fn emc_traffic_overhead_is_small() {
    // §6.5/§6.6: the EMC adds modest traffic (unlike the prefetchers).
    let mix = emc_repro::mix_by_name("H3").unwrap();
    let base = run_mix(SystemConfig::quad_core().without_emc(), &mix, BUDGET).expect_completed();
    let emc = run_mix(SystemConfig::quad_core(), &mix, BUDGET).expect_completed();
    let t0 = base.mem.dram_traffic() as f64;
    let t1 = emc.mem.dram_traffic() as f64;
    assert!(
        t1 < t0 * 1.25,
        "EMC DRAM traffic increase must be modest: {t0} -> {t1}"
    );
}
