//! Cross-crate invariants: bit-identical reruns, architectural
//! transparency of the EMC, and energy-model coherence.

use emc_repro::{
    build, estimate_default, mix_by_name, run_mix, Benchmark, PrefetcherKind, SystemConfig,
};
use emc_sim::{cycle_cap, System};

#[test]
fn identical_seeds_give_identical_runs() {
    let mix = mix_by_name("H7").unwrap();
    let cfg = SystemConfig::quad_core().with_prefetcher(PrefetcherKind::Ghb);
    let a = run_mix(cfg.clone(), &mix, 5_000).expect_completed();
    let b = run_mix(cfg, &mix, 5_000).expect_completed();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.mem.dram_reads, b.mem.dram_reads);
    assert_eq!(a.mem.row_hits, b.mem.row_hits);
    assert_eq!(a.ring.data_msgs, b.ring.data_msgs);
    assert_eq!(a.emc.uops_executed, b.emc.uops_executed);
    assert_eq!(a.prefetch.issued, b.prefetch.issued);
    for (ca, cb) in a.cores.iter().zip(&b.cores) {
        assert_eq!(ca.retired_uops, cb.retired_uops);
        assert_eq!(ca.llc_misses, cb.llc_misses);
        assert_eq!(ca.chains_sent, cb.chains_sent);
    }
}

#[test]
fn different_seeds_change_timing_not_sanity() {
    let mix = mix_by_name("H2").unwrap();
    let mut cfg = SystemConfig::quad_core();
    cfg.seed = 7;
    let a = run_mix(cfg.clone(), &mix, 4_000).expect_completed();
    cfg.seed = 8;
    let b = run_mix(cfg, &mix, 4_000).expect_completed();
    // Different memory layouts → different cycle counts, same sanity.
    assert_ne!(a.cycles, b.cycles);
    for s in [&a, &b] {
        for c in &s.cores {
            assert!(c.retired_uops >= 4_000);
        }
    }
}

/// Run a small workload to completion and return (retired, final regs,
/// spill memory words).
fn run_to_completion(emc: bool, bench: Benchmark) -> (Vec<u64>, Vec<[u64; 16]>, Vec<u64>) {
    let mut cfg = SystemConfig::quad_core();
    cfg.emc.enabled = emc;
    let workloads: Vec<_> = (0..4).map(|i| build(bench, 50 + i, 150)).collect();
    let mut sys = System::new(cfg, workloads).expect("build system");
    let stats = sys.run(u64::MAX, cycle_cap(100_000)).expect_completed();
    let retired = stats.cores.iter().map(|c| c.retired_uops).collect();
    let regs = (0..4).map(|c| *sys.core(c).committed_regs()).collect();
    let mem = (0..4)
        .flat_map(|c| (0..8).map(move |k| (c, k)))
        .map(|(c, k)| {
            sys.core(c)
                .mem
                .read_u64(emc_types::Addr(emc_workloads::SPILL_BASE + k * 8))
        })
        .collect();
    (retired, regs, mem)
}

#[test]
fn emc_is_architecturally_transparent_for_pointer_chasers() {
    for bench in [Benchmark::Mcf, Benchmark::Omnetpp] {
        let (r0, g0, m0) = run_to_completion(false, bench);
        let (r1, g1, m1) = run_to_completion(true, bench);
        assert_eq!(r0, r1, "{bench}: retired-uop counts must match");
        assert_eq!(g0, g1, "{bench}: final register state must match");
        assert_eq!(m0, m1, "{bench}: final memory state must match");
    }
}

#[test]
fn energy_model_tracks_simulation_outputs() {
    let mix = mix_by_name("H5").unwrap();
    let cfg = SystemConfig::quad_core().without_emc();
    let stats = run_mix(cfg.clone(), &mix, 5_000).expect_completed();
    let e = estimate_default(&stats, &cfg);
    assert!(e.total_j() > 0.0);
    assert!(
        e.dram_dynamic_j > 0.0,
        "memory-intensive mix must burn DRAM energy"
    );
    assert!(e.chip_static_j > 0.0);
    // Prefetching increases DRAM dynamic energy (Figure 23's mechanism).
    let pf_cfg = SystemConfig::quad_core()
        .without_emc()
        .with_prefetcher(PrefetcherKind::MarkovStream);
    let pf_stats = run_mix(pf_cfg.clone(), &mix, 5_000).expect_completed();
    let pe = estimate_default(&pf_stats, &pf_cfg);
    assert!(
        pf_stats.mem.dram_traffic() > stats.mem.dram_traffic(),
        "Markov+stream must add DRAM traffic"
    );
    assert!(pe.dram_dynamic_j > e.dram_dynamic_j);
}

#[test]
fn eight_core_dual_mc_is_transparent_too() {
    let mk = |emc: bool| {
        let mut cfg = SystemConfig::eight_core_2mc();
        cfg.emc.enabled = emc;
        let workloads: Vec<_> = (0..8).map(|i| build(Benchmark::Mcf, 90 + i, 80)).collect();
        let mut sys = System::new(cfg, workloads).expect("build system");
        let stats = sys.run(u64::MAX, cycle_cap(100_000)).expect_completed();
        let retired: Vec<u64> = stats.cores.iter().map(|c| c.retired_uops).collect();
        let regs: Vec<[u64; 16]> = (0..8).map(|c| *sys.core(c).committed_regs()).collect();
        (retired, regs)
    };
    let (r0, g0) = mk(false);
    let (r1, g1) = mk(true);
    assert_eq!(r0, r1);
    assert_eq!(g0, g1);
}
